// Package jsonpath parses the RFC 9535 JSONPath dialect supported by
// JSONSki. The paper's subset (§5.1) — root `$`, child access `.name` /
// `['name']`, array index `[n]`, index range `[m:n]`, wildcard `[*]` /
// `.*`, and the descendant operator `..name` — is extended with the
// RFC's remaining selector forms: filter expressions (`?@.price < 10`,
// RFC 9535 §2.3.5), slices with steps and negative bounds (`[::2]`,
// `[-3:]`, §2.3.4), and unions of bracketed selectors (`['a','b',1]`,
// §2.5.1). Function extensions (§2.4) are not supported and are
// rejected at parse time.
//
// Beyond parsing, the package performs the type inference of paper
// §3.2 (each step's Expect comes from its successor) and classifies
// every step as streamable — evaluable in one forward pass by the
// automaton engines, possibly with filter probes — or deferred, in
// which case Compile splits the path at [Path.SplitPoint] and hands the
// tail to the DOM-walking reference evaluator.
package jsonpath

import (
	"fmt"
	"strconv"
	"strings"
)

// ValueType classifies a JSON value's syntactic type as far as the query
// can infer it.
type ValueType uint8

// Value types inferable from a path.
const (
	Unknown ValueType = iota // any type (final step, or no constraint)
	Object
	Array
	Primitive
	// Container admits objects and arrays but not primitives: the
	// inference a wildcard, filter, or union successor yields, since each
	// selects children of either container kind (RFC 9535 wildcard
	// duality) but nothing from a primitive.
	Container
)

// String implements fmt.Stringer.
func (t ValueType) String() string {
	switch t {
	case Object:
		return "object"
	case Array:
		return "array"
	case Primitive:
		return "primitive"
	case Container:
		return "container"
	default:
		return "unknown"
	}
}

// Admits reports whether a value of concrete type vt can satisfy the
// expectation t (the G1 type-filter test).
func (t ValueType) Admits(vt ValueType) bool {
	switch t {
	case Unknown:
		return true
	case Container:
		return vt == Object || vt == Array
	default:
		return vt == t
	}
}

// TypeOfByte infers the type of the value starting with byte b.
func TypeOfByte(b byte) ValueType {
	switch b {
	case '{':
		return Object
	case '[':
		return Array
	default:
		return Primitive
	}
}

// StepKind discriminates the path step variants.
type StepKind uint8

// Step kinds.
const (
	Child      StepKind = iota // .name or ['name']
	Index                      // [n] (negative = from the end, deferred)
	Slice                      // [m:n] or [m:n:s]
	Wildcard                   // .* or [*] — every member and every element (RFC 9535 §2.3.2)
	Filter                     // [?expr] (RFC 9535 §2.3.5)
	Union                      // [s1,s2,...] — two or more bracketed selectors
	Descendant                 // ..name / ..* / ..[sel] (RFC 9535 §2.5.2)
)

// String implements fmt.Stringer.
func (k StepKind) String() string {
	switch k {
	case Child:
		return "child"
	case Index:
		return "index"
	case Slice:
		return "slice"
	case Wildcard:
		return "wildcard"
	case Filter:
		return "filter"
	case Union:
		return "union"
	default:
		return "descendant"
	}
}

// MaxIndex is the exclusive upper bound used for unconstrained element
// ranges ([*] and open-ended forward slices).
const MaxIndex = int(^uint(0) >> 1)

// maxSelectorInt bounds selector integers to I-JSON exact range
// (RFC 9535 §2.1: -(2^53)+1 .. (2^53)-1).
const maxSelectorInt = 1<<53 - 1

// Step is one matching step of a compiled path.
type Step struct {
	Kind StepKind
	Name string // Child only

	// Index/Slice/Wildcard element range. For streamable (forward,
	// non-negative) slices the parser normalizes defaults into Lo/Hi
	// (Lo+1 == Hi for Index, MaxIndex for open ends) so the automaton
	// can consume them directly. Deferred slices (negative bounds or
	// stride) keep the raw values; resolve them with [Step.SliceBounds].
	Lo, Hi int
	Stride int  // Slice step; 1 when absent, negative iterates backwards
	HasLo  bool // Slice: lower bound was given (or normalized)
	HasHi  bool // Slice: upper bound was given (or normalized)

	Filter *FilterExpr // Filter only
	Sel    []Step      // Union members; Descendant: the inner selector(s)

	// Expect is the inferred type of the value this step selects,
	// derived from the step that follows (§3.2): Object before a child
	// step, Array before an index step, Unknown at the tail.
	Expect ValueType
}

// SelectsMembers reports whether the step can select object members.
func (st Step) SelectsMembers() bool {
	switch st.Kind {
	case Child, Wildcard, Filter:
		return true
	case Union:
		for _, s := range st.Sel {
			if s.SelectsMembers() {
				return true
			}
		}
	}
	return false
}

// SelectsElements reports whether the step can select array elements.
func (st Step) SelectsElements() bool {
	switch st.Kind {
	case Index, Slice, Wildcard, Filter:
		return true
	case Union:
		for _, s := range st.Sel {
			if s.SelectsElements() {
				return true
			}
		}
	}
	return false
}

// Streamable reports whether the step can be evaluated in a single
// forward pass by the automaton engines: child and wildcard steps,
// non-negative indexes, forward slices, filters (via span probes), and
// descendant segments with one streamable non-filter selector. Unions,
// negative indexes/bounds, and backward slices are deferred — their
// RFC semantics need the container length or per-selector output order.
func (st Step) Streamable() bool {
	switch st.Kind {
	case Child, Wildcard, Filter:
		return true
	case Index:
		return st.Lo >= 0
	case Slice:
		return st.Stride >= 1 && st.Lo >= 0 && st.Hi >= 0
	case Descendant:
		if len(st.Sel) != 1 {
			return false
		}
		s := st.Sel[0]
		// Filter probes are a DFA-policy feature; a filter under a
		// descendant would need them in the NFA, so it is deferred.
		return s.Kind != Filter && s.Kind != Descendant && s.Streamable()
	default: // Union
		return false
	}
}

// SliceBounds resolves a slice step against an array of length n using
// the RFC 9535 §2.3.4.2.2 algorithm. Iterate i := lo; stride > 0 ? i <
// hi : i > hi; i += stride. A zero stride selects nothing (lo == hi).
func (st Step) SliceBounds(n int) (lo, hi, stride int) {
	stride = st.Stride
	if stride == 0 {
		return 0, 0, 1
	}
	start, end := st.Lo, st.Hi
	if !st.HasLo {
		if stride > 0 {
			start = 0
		} else {
			start = n - 1
		}
	} else if start < 0 {
		start += n
	}
	if !st.HasHi {
		if stride > 0 {
			end = n
		} else {
			end = -n - 1
		}
	} else if end < 0 {
		end += n
	}
	clamp := func(v, min, max int) int {
		if v < min {
			return min
		}
		if v > max {
			return max
		}
		return v
	}
	if stride > 0 {
		return clamp(start, 0, n), clamp(end, 0, n), stride
	}
	return clamp(start, -1, n-1), clamp(end, -1, n-1), stride
}

// Path is a compiled JSONPath query.
type Path struct {
	Steps []Step
	src   string
}

// HasDescendant reports whether any step is a descendant step.
func (p *Path) HasDescendant() bool {
	for _, st := range p.Steps {
		if st.Kind == Descendant {
			return true
		}
	}
	return false
}

// HasFilter reports whether any step is a filter step (a filter nested
// inside a descendant or union segment counts).
func (p *Path) HasFilter() bool {
	for _, st := range p.Steps {
		if st.Kind == Filter {
			return true
		}
		for _, s := range st.Sel {
			if s.Kind == Filter {
				return true
			}
		}
	}
	return false
}

// SplitPoint returns the index of the first step the automaton engines
// cannot evaluate in a forward pass, or -1 when the whole path streams.
// Besides deferred steps (unions, negative indexes/bounds, backward
// slices), a path mixing descendant and filter steps splits at the
// earlier of the two: filter probes live in the DFA policy and
// descendants in the NFA, and neither engine hosts the other's feature.
func (p *Path) SplitPoint() int {
	desc, filt := -1, -1
	for i, st := range p.Steps {
		if !st.Streamable() {
			if desc >= 0 && filt >= 0 {
				break
			}
			return i
		}
		if desc < 0 && st.Kind == Descendant {
			desc = i
		}
		if filt < 0 && st.Kind == Filter {
			filt = i
		}
	}
	if desc >= 0 && filt >= 0 {
		if desc < filt {
			return desc
		}
		return filt
	}
	return -1
}

// String returns the original query text.
func (p *Path) String() string { return p.src }

// stepExpect is the §3.2 inference: the type a value must have for the
// given successor step to select anything from it.
func stepExpect(next Step) ValueType {
	switch next.Kind {
	case Child:
		return Object
	case Index, Slice:
		return Array
	case Wildcard, Filter, Union:
		// These select children of objects and arrays alike, but nothing
		// from a primitive: G1 can still skip primitive values.
		return Container
	default: // Descendant: inference is defeated (level unknown)
		return Unknown
	}
}

// RootType returns the inferred type of the whole record: an object when
// the first step only selects members, an array when it only selects
// elements, and Unknown otherwise (bare `$`, wildcard, filter, ...).
func (p *Path) RootType() ValueType {
	if len(p.Steps) == 0 {
		return Unknown
	}
	return stepExpect(p.Steps[0])
}

// ParseError describes a syntax error in a path expression.
type ParseError struct {
	Query string
	Pos   int
	Msg   string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("jsonpath: %s at offset %d in %q", e.Msg, e.Pos, e.Query)
}

// Parse compiles a JSONPath expression. The grammar is RFC 9535's:
// no whitespace padding around the query, strict member-name
// shorthands, strict string escapes, and no leading zeros or negative
// zero in selector integers.
func Parse(query string) (*Path, error) {
	if query == "" {
		return nil, &ParseError{query, 0, "empty query"}
	}
	if query[0] != '$' {
		return nil, &ParseError{query, 0, "query must start with '$'"}
	}
	p := &parser{src: query, pos: 1}
	steps, err := p.segments()
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.src) {
		return nil, p.errf("expected '.' or '[', got %q", p.src[p.pos])
	}
	inferTypes(steps)
	return &Path{Steps: steps, src: query}, nil
}

// inferTypes fills each step's Expect from its successor (§3.2). A
// descendant defeats inference on both sides: its level is unknown.
func inferTypes(steps []Step) {
	for i := range steps {
		if i+1 == len(steps) || steps[i].Kind == Descendant ||
			steps[i+1].Kind == Descendant {
			steps[i].Expect = Unknown
			continue
		}
		steps[i].Expect = stepExpect(steps[i+1])
	}
}

// MustParse is Parse for statically known-good queries; it panics on error.
func MustParse(query string) *Path {
	p, err := Parse(query)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	src string
	pos int
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{p.src, p.pos, fmt.Sprintf(format, args...)}
}

func (p *parser) skipWS() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// segments parses *(S segment). It stops — rewinding any whitespace —
// at the first position where no segment starts, so filter sub-queries
// (`@.a == 1`) end exactly where their path syntax does.
func (p *parser) segments() ([]Step, error) {
	var steps []Step
	for {
		save := p.pos
		p.skipWS()
		if p.pos >= len(p.src) || (p.src[p.pos] != '.' && p.src[p.pos] != '[') {
			p.pos = save
			return steps, nil
		}
		st, err := p.segment()
		if err != nil {
			return nil, err
		}
		steps = append(steps, st)
	}
}

func (p *parser) segment() (Step, error) {
	if p.src[p.pos] == '[' {
		sels, err := p.bracket()
		if err != nil {
			return Step{}, err
		}
		if len(sels) == 1 {
			return sels[0], nil
		}
		return Step{Kind: Union, Sel: sels}, nil
	}
	p.pos++ // past '.'
	if p.pos < len(p.src) && p.src[p.pos] == '.' {
		p.pos++
		return p.descendant()
	}
	if p.pos < len(p.src) && p.src[p.pos] == '*' {
		p.pos++
		return wildcardStep(), nil
	}
	name, err := p.shorthandName()
	if err != nil {
		return Step{}, err
	}
	return Step{Kind: Child, Name: name}, nil
}

func (p *parser) descendant() (Step, error) {
	if p.pos >= len(p.src) {
		return Step{}, p.errf("'..' needs a selector")
	}
	switch p.src[p.pos] {
	case '*':
		p.pos++
		return Step{Kind: Descendant, Sel: []Step{wildcardStep()}}, nil
	case '[':
		sels, err := p.bracket()
		if err != nil {
			return Step{}, err
		}
		return Step{Kind: Descendant, Sel: sels}, nil
	default:
		name, err := p.shorthandName()
		if err != nil {
			return Step{}, err
		}
		return Step{Kind: Descendant, Sel: []Step{{Kind: Child, Name: name}}}, nil
	}
}

func wildcardStep() Step {
	return Step{Kind: Wildcard, Lo: 0, Hi: MaxIndex, Stride: 1}
}

// shorthandName scans an RFC 9535 member-name-shorthand: first char
// ALPHA / "_" / non-ASCII, then additionally DIGIT.
func (p *parser) shorthandName() (string, error) {
	start := p.pos
	if p.pos >= len(p.src) || !isNameFirst(p.src[p.pos]) {
		return "", p.errf("invalid member name shorthand")
	}
	for p.pos < len(p.src) && isNameChar(p.src[p.pos]) {
		p.pos++
	}
	return p.src[start:p.pos], nil
}

func isNameFirst(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isNameChar(c byte) bool {
	return isNameFirst(c) || (c >= '0' && c <= '9')
}

// bracket parses a bracketed selection `[selector *(, selector)]`.
func (p *parser) bracket() ([]Step, error) {
	p.pos++ // past '['
	var sels []Step
	for {
		p.skipWS()
		if p.pos >= len(p.src) {
			return nil, p.errf("unterminated '['")
		}
		st, err := p.selector()
		if err != nil {
			return nil, err
		}
		sels = append(sels, st)
		p.skipWS()
		if p.pos >= len(p.src) {
			return nil, p.errf("unterminated '['")
		}
		switch p.src[p.pos] {
		case ',':
			p.pos++
		case ']':
			p.pos++
			return sels, nil
		default:
			return nil, p.errf("expected ',' or ']', got %q", p.src[p.pos])
		}
	}
}

func (p *parser) selector() (Step, error) {
	switch c := p.src[p.pos]; {
	case c == '*':
		p.pos++
		return wildcardStep(), nil
	case c == '\'' || c == '"':
		name, err := p.stringLiteral(c)
		if err != nil {
			return Step{}, err
		}
		return Step{Kind: Child, Name: name}, nil
	case c == '?':
		return p.filterSelector()
	case c == '-' || c == ':' || (c >= '0' && c <= '9'):
		return p.indexOrSlice()
	case c == ']':
		return Step{}, p.errf("empty bracketed selection")
	default:
		return Step{}, p.errf("unexpected %q after '['", c)
	}
}

// indexOrSlice parses `int`, `[start]:[end]`, or `[start]:[end]:[step]`.
func (p *parser) indexOrSlice() (Step, error) {
	var lo, hi, stride int
	var hasLo, hasHi bool
	stride = 1
	if c := p.src[p.pos]; c == '-' || (c >= '0' && c <= '9') {
		n, err := p.selectorInt()
		if err != nil {
			return Step{}, err
		}
		lo, hasLo = n, true
	}
	p.skipWS()
	if p.pos >= len(p.src) || p.src[p.pos] != ':' {
		if !hasLo {
			return Step{}, p.errf("missing index")
		}
		return Step{Kind: Index, Lo: lo, Hi: lo + 1, Stride: 1}, nil
	}
	p.pos++ // first ':'
	p.skipWS()
	if p.pos < len(p.src) {
		if c := p.src[p.pos]; c == '-' || (c >= '0' && c <= '9') {
			n, err := p.selectorInt()
			if err != nil {
				return Step{}, err
			}
			hi, hasHi = n, true
		}
	}
	p.skipWS()
	if p.pos < len(p.src) && p.src[p.pos] == ':' {
		p.pos++ // second ':'
		p.skipWS()
		if p.pos < len(p.src) {
			if c := p.src[p.pos]; c == '-' || (c >= '0' && c <= '9') {
				n, err := p.selectorInt()
				if err != nil {
					return Step{}, err
				}
				stride = n
			}
		}
	}
	st := Step{Kind: Slice, Lo: lo, Hi: hi, Stride: stride, HasLo: hasLo, HasHi: hasHi}
	normalizeSlice(&st)
	return st, nil
}

// normalizeSlice folds forward, non-negative slices into the automaton's
// Lo/Hi representation (defaults applied, empty ranges collapsed).
// Deferred slices keep their raw bounds for SliceBounds.
func normalizeSlice(st *Step) {
	if st.Stride == 0 {
		// [::0] selects nothing (RFC 9535 §2.3.4.2.2).
		*st = Step{Kind: Slice, Lo: 0, Hi: 0, Stride: 1, HasLo: true, HasHi: true}
		return
	}
	if st.Stride < 0 || (st.HasLo && st.Lo < 0) || (st.HasHi && st.Hi < 0) {
		return
	}
	if !st.HasLo {
		st.Lo = 0
	}
	if !st.HasHi {
		st.Hi = MaxIndex
	}
	if st.Hi < st.Lo {
		st.Lo, st.Hi = 0, 0
	}
	st.HasLo, st.HasHi = true, true
}

// selectorInt parses an RFC 9535 selector integer: optional '-', no
// leading zeros, no negative zero, I-JSON exact range.
func (p *parser) selectorInt() (int, error) {
	start := p.pos
	neg := false
	if p.src[p.pos] == '-' {
		neg = true
		p.pos++
	}
	digits := p.pos
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == digits {
		return 0, p.errf("expected digits after '-'")
	}
	if p.pos-digits > 1 && p.src[digits] == '0' {
		return 0, p.errf("leading zeros are not allowed")
	}
	if neg && p.pos-digits == 1 && p.src[digits] == '0' {
		return 0, p.errf("negative zero is not a valid index")
	}
	n, err := strconv.Atoi(p.src[start:p.pos])
	if err != nil || n > maxSelectorInt || n < -maxSelectorInt {
		return 0, p.errf("index out of range: %s", p.src[start:p.pos])
	}
	return n, nil
}

// stringLiteral parses an RFC 9535 quoted string (name selector or
// filter literal). Double-quoted strings escape `"` and single-quoted
// strings escape `'`; both accept \b \f \n \r \t \/ \\ and \uXXXX with
// surrogate pairs. Raw control characters and lone surrogates are
// rejected.
func (p *parser) stringLiteral(q byte) (string, error) {
	p.pos++ // past opening quote
	var sb strings.Builder
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case c == q:
			p.pos++
			return sb.String(), nil
		case c == '\\':
			if err := p.escape(q, &sb); err != nil {
				return "", err
			}
		case c < 0x20:
			return "", p.errf("raw control character in string literal")
		default:
			sb.WriteByte(c)
			p.pos++
		}
	}
	return "", p.errf("unterminated string literal")
}

func (p *parser) escape(q byte, sb *strings.Builder) error {
	if p.pos+1 >= len(p.src) {
		p.pos++
		return p.errf("unterminated escape")
	}
	e := p.src[p.pos+1]
	p.pos += 2
	switch e {
	case q:
		sb.WriteByte(q)
	case 'b':
		sb.WriteByte('\b')
	case 'f':
		sb.WriteByte('\f')
	case 'n':
		sb.WriteByte('\n')
	case 'r':
		sb.WriteByte('\r')
	case 't':
		sb.WriteByte('\t')
	case '/':
		sb.WriteByte('/')
	case '\\':
		sb.WriteByte('\\')
	case 'u':
		r, err := p.hex4()
		if err != nil {
			return err
		}
		if r >= 0xDC00 && r <= 0xDFFF {
			return p.errf("lone low surrogate in \\u escape")
		}
		if r >= 0xD800 && r <= 0xDBFF {
			if p.pos+1 >= len(p.src) || p.src[p.pos] != '\\' || p.src[p.pos+1] != 'u' {
				return p.errf("high surrogate not followed by \\u escape")
			}
			p.pos += 2
			lo, err := p.hex4()
			if err != nil {
				return err
			}
			if lo < 0xDC00 || lo > 0xDFFF {
				return p.errf("high surrogate not followed by low surrogate")
			}
			r = 0x10000 + (r-0xD800)<<10 + (lo - 0xDC00)
		}
		sb.WriteRune(r)
	default:
		p.pos -= 2
		return p.errf("invalid escape \\%c", e)
	}
	return nil
}

func (p *parser) hex4() (rune, error) {
	if p.pos+4 > len(p.src) {
		return 0, p.errf("truncated \\u escape")
	}
	var r rune
	for k := 0; k < 4; k++ {
		r <<= 4
		switch d := p.src[p.pos+k]; {
		case d >= '0' && d <= '9':
			r |= rune(d - '0')
		case d >= 'a' && d <= 'f':
			r |= rune(d-'a') + 10
		case d >= 'A' && d <= 'F':
			r |= rune(d-'A') + 10
		default:
			return 0, p.errf("invalid hex digit %q in \\u escape", d)
		}
	}
	p.pos += 4
	return r, nil
}
