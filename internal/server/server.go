// Package server is jsonskid's HTTP serving layer: streaming JSONPath
// evaluation over request bodies, backed by a compiled-query LRU cache
// (jsonski.Cache), a bounded record-parallel worker pool, and live
// metrics.
//
// Endpoints:
//
//	POST /query?path=$.a.b   evaluate one path; body is NDJSON (default)
//	                         or a single JSON record (Content-Type:
//	                         application/json); matches stream back as
//	                         NDJSON lines {"record":n,"value":...}.
//	                         With ?explain=1 the response ends with an
//	                         {"explain":...} trailer listing the
//	                         fast-forward movements (bounded event log).
//	POST /multi?path=..&path=..  evaluate several paths in one shared
//	                         pass per record (jsonski.QuerySet); lines
//	                         gain a "query" index field
//	GET/POST /doc?get=a.b[2] navigate the body (one JSON document) to a
//	                         single value with the on-demand lazy API —
//	                         no query compilation; the raw value span is
//	                         returned verbatim, 404 when the path does
//	                         not resolve. Indexed via the same catalog/
//	                         cache tiers as single-document /query.
//	POST /index              persist a document's structural index into
//	                         the catalog (requires -index-dir); NDJSON
//	                         bodies also persist their record table
//	GET  /index              list cataloged sidecars and catalog stats
//	GET  /index/{hash}       one cataloged sidecar's info
//	DELETE /index/{hash}     drop a sidecar (safe while readers stream)
//	GET  /metrics            live counters as JSON (see metricsSnapshot)
//	GET  /metrics/prom       the same counters plus latency histograms in
//	                         the Prometheus text exposition format
//	GET  /healthz            liveness probe (process is up)
//	GET  /readyz             readiness probe: 503 once shutdown has begun
//	                         or while the worker queue is saturated
//
// Records of an NDJSON body are fanned out across the worker pool and
// their results written back in input order, flushed record by record,
// so a client consuming a long stream sees matches incrementally while
// later records are still being parsed.
package server

import (
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync/atomic"
	"time"

	"jsonski"
	"jsonski/internal/telemetry"
)

// Config tunes a Server. The zero value picks sensible defaults.
type Config struct {
	// Workers is the number of evaluation goroutines shared by all
	// requests. 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds accepted-but-unstarted record evaluations
	// (backpressure). 0 means 4×Workers.
	QueueDepth int
	// CacheSize caps the compiled-query LRU cache. 0 means
	// jsonski.DefaultCacheSize.
	CacheSize int
	// MaxBodyBytes caps a single request body; an NDJSON stream that
	// exceeds it is cut off mid-request with an error. 0 means 1 GiB,
	// negative means unlimited.
	MaxBodyBytes int64
	// IndexCacheBytes bounds the structural-index LRU used for
	// single-document requests: repeated queries over the same hot
	// document reuse its materialized word masks instead of
	// re-classifying the buffer. 0 means jsonski.DefaultIndexCacheBytes,
	// negative disables the cache.
	IndexCacheBytes int64
	// IndexDir, when non-empty, enables the persistent index catalog:
	// a directory of serialized index sidecars warmed at startup and
	// managed through the /index endpoints. Single-document queries
	// consult it before the in-memory index cache, so a restarted
	// daemon serves repeated documents without rebuilding their masks.
	IndexDir string
	// IndexDirBytes bounds the catalog's on-disk footprint (LRU
	// eviction unlinks the stalest sidecars). 0 means the store default.
	IndexDirBytes int64
	// Logger receives structured access and error logs. nil disables
	// request logging entirely (the handlers never format log records).
	Logger *slog.Logger
	// SlowQuery, when positive, logs any request slower than this at
	// Warn level (requires Logger). With tracing enabled it doubles as
	// the always-sample override: a request that crosses the threshold
	// exports its trace even when head-based sampling said no.
	SlowQuery time.Duration
	// Tracer, when non-nil, enables distributed tracing: every /query
	// and /multi request gets a root span (continuing an inbound W3C
	// traceparent when present) with child spans for index lookup,
	// per-record engine runs, and sink flushes. nil disables tracing;
	// the request path then pays a single nil check.
	Tracer *telemetry.Tracer
	// Pprof mounts net/http/pprof under /debug/pprof/ when true.
	Pprof bool
}

// DefaultMaxBodyBytes is the request-body cap used when
// Config.MaxBodyBytes is 0.
const DefaultMaxBodyBytes = 1 << 30

// Server is the HTTP handler. Create with New, serve it with net/http,
// and Close it after the HTTP server has drained.
type Server struct {
	cfg     Config
	cache   *jsonski.Cache
	icache  *jsonski.IndexCache // nil when disabled
	catalog *jsonski.Catalog    // nil when no IndexDir is configured
	pool    *workerPool
	mux     *http.ServeMux
	m       metrics
	start   time.Time
	down    atomic.Bool // readiness: set once shutdown begins
	log     *slog.Logger
	tracer  *telemetry.Tracer // nil when tracing is disabled
}

// New builds a Server and starts its worker pool. It fails only when
// Config.IndexDir is set and the catalog directory cannot be opened;
// warming — mapping every valid sidecar already in the directory —
// happens here, before the first request.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	s := &Server{
		cfg:    cfg,
		cache:  jsonski.NewCache(cfg.CacheSize),
		pool:   newWorkerPool(cfg.Workers, cfg.QueueDepth),
		mux:    http.NewServeMux(),
		start:  time.Now(),
		log:    cfg.Logger,
		tracer: cfg.Tracer,
	}
	if cfg.IndexCacheBytes >= 0 {
		s.icache = jsonski.NewIndexCache(cfg.IndexCacheBytes)
	}
	if cfg.IndexDir != "" {
		cat, err := jsonski.OpenCatalog(cfg.IndexDir, cfg.IndexDirBytes)
		if err != nil {
			s.pool.close()
			return nil, err
		}
		s.catalog = cat
		if s.log != nil {
			st := cat.Stats()
			s.log.Info("index catalog warmed",
				"dir", cat.Dir(),
				"entries", st.Entries,
				"bytes", st.Bytes,
				"invalidated", st.Invalidated,
				"mmap", st.Mapped,
			)
		}
	}
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /multi", s.handleMulti)
	s.mux.HandleFunc("GET /doc", s.handleDoc)
	s.mux.HandleFunc("POST /doc", s.handleDoc)
	s.mux.HandleFunc("POST /index", s.handleIndexPut)
	s.mux.HandleFunc("GET /index", s.handleIndexList)
	s.mux.HandleFunc("GET /index/{hash}", s.handleIndexGet)
	s.mux.HandleFunc("DELETE /index/{hash}", s.handleIndexDelete)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /metrics/prom", s.handleProm)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	if cfg.Pprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// ServeHTTP implements http.Handler: the mux wrapped with per-request
// timing, the root span of the request's trace, the access log, and the
// slow-query log.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	evalPath := r.URL.Path == "/query" || r.URL.Path == "/multi" || r.URL.Path == "/doc"
	var sp *telemetry.Span
	if s.tracer != nil && evalPath {
		// Continue an inbound W3C context when one is present (the
		// parent's sampling decision wins); mint a fresh trace otherwise.
		parent, _ := telemetry.ParseTraceparent(
			r.Header.Get("traceparent"), r.Header.Get("tracestate"))
		sp = s.tracer.StartRoot(r.Method+" "+r.URL.Path, parent)
		// Inject before the handler commits the status line so callers
		// can stitch their client span to ours even on error responses.
		w.Header().Set("traceparent", sp.Context().Traceparent())
		r = r.WithContext(telemetry.ContextWithSpan(r.Context(), sp))
	}
	s.mux.ServeHTTP(sw, r)
	dur := time.Since(t0)
	switch r.URL.Path {
	case "/query":
		s.m.queryLatency.Observe(dur)
	case "/multi":
		s.m.multiLatency.Observe(dur)
	case "/doc":
		s.m.docLatency.Observe(dur)
	}
	slow := s.cfg.SlowQuery > 0 && dur >= s.cfg.SlowQuery && evalPath
	if sp != nil {
		sp.SetString("http.method", r.Method)
		sp.SetString("http.route", r.URL.Path)
		sp.SetInt("http.status_code", int64(sw.status))
		sp.SetInt("jsonski.queue.capacity", int64(s.pool.queueCap()))
		if slow {
			// The always-sample override: slow requests export their
			// trace even when the head-based decision said no.
			sp.SetBool("jsonski.slow_query", true)
			sp.ForceSample()
		}
		sp.End()
	}
	if s.log == nil {
		return
	}
	attrs := []any{
		"method", r.Method,
		"path", r.URL.Path,
		"query", r.URL.RawQuery,
		"status", sw.status,
		"duration", dur,
		"remote", r.RemoteAddr,
	}
	if sp != nil {
		attrs = append(attrs, "trace_id", sp.Context().TraceID.String())
	}
	if slow {
		s.log.Warn("slow query", attrs...)
	} else {
		s.log.Info("request", attrs...)
	}
}

// statusWriter captures the response status for the access log. Unwrap
// lets http.NewResponseController reach the underlying writer's Flush
// and full-duplex controls, which the streaming handlers depend on.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// Cache exposes the compiled-query cache (shared with any embedding
// code that wants to pre-warm it).
func (s *Server) Cache() *jsonski.Cache { return s.cache }

// IndexCache exposes the structural-index cache, or nil when disabled.
func (s *Server) IndexCache() *jsonski.IndexCache { return s.icache }

// Catalog exposes the persistent index catalog, or nil when no
// Config.IndexDir was configured.
func (s *Server) Catalog() *jsonski.Catalog { return s.catalog }

// BeginShutdown flips /readyz to 503 so load balancers stop routing new
// work here. Call before http.Server.Shutdown; in-flight requests are
// unaffected.
func (s *Server) BeginShutdown() { s.down.Store(true) }

// Close drains and stops the worker pool and detaches the catalog
// (sidecars stay on disk for the next process to warm from). Call after
// http.Server.Shutdown has returned so no request can still submit work.
func (s *Server) Close() {
	s.pool.close()
	if s.catalog != nil {
		s.catalog.Close()
	}
}

// write sends b to the client, accounting bytes out.
func (s *Server) write(w io.Writer, b []byte) {
	n, _ := w.Write(b)
	s.m.bytesOut.Add(int64(n))
}

// countingReader tallies bytes drawn from a request body.
type countingReader struct {
	r io.Reader
	n *atomic.Int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}
