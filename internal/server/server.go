// Package server is jsonskid's HTTP serving layer: streaming JSONPath
// evaluation over request bodies, backed by a compiled-query LRU cache
// (jsonski.Cache), a bounded record-parallel worker pool, and live
// metrics.
//
// Endpoints:
//
//	POST /query?path=$.a.b   evaluate one path; body is NDJSON (default)
//	                         or a single JSON record (Content-Type:
//	                         application/json); matches stream back as
//	                         NDJSON lines {"record":n,"value":...}
//	POST /multi?path=..&path=..  evaluate several paths in one shared
//	                         pass per record (jsonski.QuerySet); lines
//	                         gain a "query" index field
//	GET  /metrics            live counters (see metricsSnapshot)
//	GET  /healthz            liveness probe
//
// Records of an NDJSON body are fanned out across the worker pool and
// their results written back in input order, flushed record by record,
// so a client consuming a long stream sees matches incrementally while
// later records are still being parsed.
package server

import (
	"io"
	"net/http"
	"runtime"
	"sync/atomic"

	"jsonski"
)

// Config tunes a Server. The zero value picks sensible defaults.
type Config struct {
	// Workers is the number of evaluation goroutines shared by all
	// requests. 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds accepted-but-unstarted record evaluations
	// (backpressure). 0 means 4×Workers.
	QueueDepth int
	// CacheSize caps the compiled-query LRU cache. 0 means
	// jsonski.DefaultCacheSize.
	CacheSize int
	// MaxBodyBytes caps a single request body; an NDJSON stream that
	// exceeds it is cut off mid-request with an error. 0 means 1 GiB,
	// negative means unlimited.
	MaxBodyBytes int64
	// IndexCacheBytes bounds the structural-index LRU used for
	// single-document requests: repeated queries over the same hot
	// document reuse its materialized word masks instead of
	// re-classifying the buffer. 0 means jsonski.DefaultIndexCacheBytes,
	// negative disables the cache.
	IndexCacheBytes int64
}

// DefaultMaxBodyBytes is the request-body cap used when
// Config.MaxBodyBytes is 0.
const DefaultMaxBodyBytes = 1 << 30

// Server is the HTTP handler. Create with New, serve it with net/http,
// and Close it after the HTTP server has drained.
type Server struct {
	cfg    Config
	cache  *jsonski.Cache
	icache *jsonski.IndexCache // nil when disabled
	pool   *workerPool
	mux    *http.ServeMux
	m      metrics
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	s := &Server{
		cfg:   cfg,
		cache: jsonski.NewCache(cfg.CacheSize),
		pool:  newWorkerPool(cfg.Workers, cfg.QueueDepth),
		mux:   http.NewServeMux(),
	}
	if cfg.IndexCacheBytes >= 0 {
		s.icache = jsonski.NewIndexCache(cfg.IndexCacheBytes)
	}
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /multi", s.handleMulti)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Cache exposes the compiled-query cache (shared with any embedding
// code that wants to pre-warm it).
func (s *Server) Cache() *jsonski.Cache { return s.cache }

// IndexCache exposes the structural-index cache, or nil when disabled.
func (s *Server) IndexCache() *jsonski.IndexCache { return s.icache }

// Close drains and stops the worker pool. Call after http.Server
// .Shutdown has returned so no request can still submit work.
func (s *Server) Close() { s.pool.close() }

// write sends b to the client, accounting bytes out.
func (s *Server) write(w io.Writer, b []byte) {
	n, _ := w.Write(b)
	s.m.bytesOut.Add(int64(n))
}

// countingReader tallies bytes drawn from a request body.
type countingReader struct {
	r io.Reader
	n *atomic.Int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}
