package server

import (
	"context"
	"errors"
	"sync"
)

// errPoolClosed is returned by submit after close() has begun.
var errPoolClosed = errors.New("server: worker pool closed")

// workerPool is a fixed set of goroutines draining a bounded task queue.
// It is shared by all in-flight requests, so the number of records being
// evaluated concurrently — and therefore engine memory — is capped
// globally, not per request. A full queue makes submit block, which
// propagates backpressure up through the request handlers to the
// clients' TCP streams.
type workerPool struct {
	tasks chan func()
	quit  chan struct{}
	once  sync.Once
	wg    sync.WaitGroup
	n     int
}

func newWorkerPool(workers, queue int) *workerPool {
	if workers < 1 {
		workers = 1
	}
	if queue < 1 {
		queue = 1
	}
	p := &workerPool{
		tasks: make(chan func(), queue),
		quit:  make(chan struct{}),
		n:     workers,
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *workerPool) worker() {
	defer p.wg.Done()
	for {
		select {
		case t := <-p.tasks:
			t()
		case <-p.quit:
			// Drain what was accepted before shutdown; every submitted
			// task owns a buffered result channel some request is
			// waiting on, so none may be dropped.
			for {
				select {
				case t := <-p.tasks:
					t()
				default:
					return
				}
			}
		}
	}
}

// submit enqueues fn, blocking while the queue is full. It fails fast
// when ctx is done or the pool is shutting down; on success fn is
// guaranteed to run eventually.
func (p *workerPool) submit(ctx context.Context, fn func()) error {
	select {
	case <-p.quit:
		return errPoolClosed
	default:
	}
	select {
	case p.tasks <- fn:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-p.quit:
		return errPoolClosed
	}
}

// queueDepth is the number of accepted-but-unstarted tasks.
func (p *workerPool) queueDepth() int { return len(p.tasks) }

// queueCap is the queue's capacity.
func (p *workerPool) queueCap() int { return cap(p.tasks) }

// workers is the goroutine count.
func (p *workerPool) workers() int { return p.n }

// close stops the pool after draining accepted tasks. Call only once no
// new submissions can arrive (i.e. after the HTTP server has drained).
func (p *workerPool) close() {
	p.once.Do(func() { close(p.quit) })
	p.wg.Wait()
}
