package server

import (
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"testing"
)

// TestStressSingleDocIndexCacheConcurrent hammers the single-document
// path (which runs through the structural-index cache) and the NDJSON
// path from many goroutines over a shared working set, under the
// server's bounded worker pool. Run with -race this covers concurrent
// index Get/Release against cache eviction; the body checks make mask
// corruption visible as wrong match output.
func TestStressSingleDocIndexCacheConcurrent(t *testing.T) {
	// A tiny index-cache budget keeps eviction constant while requests
	// still hold evicted indexes.
	_, ts := newTestServer(t, Config{Workers: 4, IndexCacheBytes: 2048})
	docs := make([]string, 4)
	for i := range docs {
		docs[i] = fmt.Sprintf(`{"a": {"b": %d}, "pad": "%s"}`, i, strings.Repeat("x", 64*i))
	}
	queryURL := ts.URL + "/query?path=" + url.QueryEscape("$.a.b")
	multiURL := ts.URL + "/multi?path=" + url.QueryEscape("$.a.b") + "&path=" + url.QueryEscape("$.pad")

	var wg sync.WaitGroup
	errc := make(chan error, 12)
	for g := 0; g < 12; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < 25; it++ {
				d := (g + it) % len(docs)
				switch it % 3 {
				case 0, 1: // single JSON document -> index cache path
					code, body := post(t, queryURL, "application/json", docs[d])
					want := fmt.Sprintf(`{"record":0,"value":%d}`+"\n", d)
					if code != http.StatusOK || body != want {
						errc <- fmt.Errorf("goroutine %d iter %d: status %d body %q, want %q", g, it, code, body, want)
						return
					}
				case 2: // NDJSON stream -> lazy path, same pool
					var in strings.Builder
					for r := 0; r < 10; r++ {
						in.WriteString(docs[(d+r)%len(docs)])
						in.WriteByte('\n')
					}
					code, body := post(t, queryURL, "application/x-ndjson", in.String())
					if code != http.StatusOK {
						errc <- fmt.Errorf("goroutine %d iter %d: ndjson status %d: %s", g, it, code, body)
						return
					}
					lines := strings.Split(strings.TrimSpace(body), "\n")
					if len(lines) != 10 {
						errc <- fmt.Errorf("goroutine %d iter %d: %d ndjson lines, want 10", g, it, len(lines))
						return
					}
					for r, ln := range lines {
						want := fmt.Sprintf(`{"record":%d,"value":%d}`, r, (d+r)%len(docs))
						if ln != want {
							errc <- fmt.Errorf("goroutine %d iter %d: line %d = %q, want %q", g, it, r, ln, want)
							return
						}
					}
				}
				if it%7 == 0 { // single-doc multi also rides the index cache
					code, body := post(t, multiURL, "application/json", docs[d])
					if code != http.StatusOK || !strings.Contains(body, fmt.Sprintf(`{"record":0,"query":0,"value":%d}`, d)) {
						errc <- fmt.Errorf("goroutine %d iter %d: multi status %d body %q", g, it, code, body)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	snap := getMetrics(t, ts.URL)
	ic := snap.IndexCache
	if !ic.Enabled {
		t.Fatal("index cache should be enabled")
	}
	if ic.Hits == 0 {
		t.Fatalf("no index cache hits across repeated posts of shared documents: %+v", ic)
	}
	if ic.Hits+ic.Misses == 0 || ic.BytesIndexed == 0 {
		t.Fatalf("index cache metrics look dead: %+v", ic)
	}
	if ic.Bytes > ic.CapBytes {
		t.Fatalf("index cache retains %d bytes over budget %d", ic.Bytes, ic.CapBytes)
	}
}

// TestStressRFC9535SelectorsConcurrent drives the full RFC 9535
// selector surface — skip-eligible and full-parse filters, unions,
// stepped slices, negative indices, and descendant segments — through
// /query and /multi from many goroutines while a tiny index-cache
// budget forces constant eviction. Under -race this covers the filter
// probe runtimes, the segmented (deferred) engines, and the query-set
// sidecar routing against concurrent index Get/Release; exact body
// checks make any cross-request state leakage visible as wrong output.
func TestStressRFC9535SelectorsConcurrent(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, IndexCacheBytes: 2048})
	docs := make([]string, 4)
	for i := range docs {
		// Raw bytes matter: /query emits the matched span verbatim, so
		// the documents are written without spaces inside the items.
		docs[i] = fmt.Sprintf(
			`{"items": [{"name":"a","price":%d}, {"name":"b","price":%d}], "max": 10, "pad": "%s"}`,
			i, i+10, strings.Repeat("y", 48*i))
	}
	type shape struct {
		path string
		// want renders the exact expected body for document d; nlines
		// is used instead when the emission order is engine-defined.
		want   func(d int) string
		nlines int
	}
	shapes := []shape{
		{path: "$.items[?@.price < 10]", // skip-eligible filter probe
			want: func(d int) string { return fmt.Sprintf(`{"record":0,"value":{"name":"a","price":%d}}`+"\n", d) }},
		{path: "$.items[?@.price < $.max]", // absolute ref -> full-parse plan
			want: func(d int) string { return fmt.Sprintf(`{"record":0,"value":{"name":"a","price":%d}}`+"\n", d) }},
		{path: "$.items[0]['name','price']", // union
			want: func(d int) string {
				return fmt.Sprintf(`{"record":0,"value":"a"}`+"\n"+`{"record":0,"value":%d}`+"\n", d)
			}},
		{path: "$.items[::2].price", // stepped slice
			want: func(d int) string { return fmt.Sprintf(`{"record":0,"value":%d}`+"\n", d) }},
		{path: "$.items[-1].price", // negative index -> segmented engine
			want: func(d int) string { return fmt.Sprintf(`{"record":0,"value":%d}`+"\n", d+10) }},
		{path: "$..price", nlines: 2}, // descendant -> NFA, order engine-defined
	}
	multiURL := ts.URL + "/multi?path=" + url.QueryEscape("$.items[*].name") +
		"&path=" + url.QueryEscape("$.items[?@.price >= 10].price") +
		"&path=" + url.QueryEscape("$.max")

	var wg sync.WaitGroup
	errc := make(chan error, 12)
	for g := 0; g < 12; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < 20; it++ {
				d := (g + it) % len(docs)
				sh := shapes[(g*7+it)%len(shapes)]
				u := ts.URL + "/query?path=" + url.QueryEscape(sh.path)
				code, body := post(t, u, "application/json", docs[d])
				if code != http.StatusOK {
					errc <- fmt.Errorf("goroutine %d iter %d: %s status %d: %s", g, it, sh.path, code, body)
					return
				}
				if sh.want != nil {
					if want := sh.want(d); body != want {
						errc <- fmt.Errorf("goroutine %d iter %d: %s over doc %d = %q, want %q", g, it, sh.path, d, body, want)
						return
					}
				} else if n := len(strings.Split(strings.TrimSpace(body), "\n")); n != sh.nlines {
					errc <- fmt.Errorf("goroutine %d iter %d: %s over doc %d: %d lines, want %d", g, it, sh.path, d, n, sh.nlines)
					return
				}
				if it%5 == 0 { // mixed shared+sidecar query set
					code, body := post(t, multiURL, "application/json", docs[d])
					if code != http.StatusOK {
						errc <- fmt.Errorf("goroutine %d iter %d: multi status %d: %s", g, it, code, body)
						return
					}
					for _, want := range []string{
						`{"record":0,"query":0,"value":"a"}`,
						`{"record":0,"query":0,"value":"b"}`,
						fmt.Sprintf(`{"record":0,"query":1,"value":%d}`, d+10),
						`{"record":0,"query":2,"value":10}`,
					} {
						if !strings.Contains(body, want) {
							errc <- fmt.Errorf("goroutine %d iter %d: multi body %q missing %q", g, it, body, want)
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	ic := getMetrics(t, ts.URL).IndexCache
	if ic.Hits+ic.Misses == 0 {
		t.Fatalf("index cache saw no traffic: %+v", ic)
	}
	if ic.Bytes > ic.CapBytes {
		t.Fatalf("index cache retains %d bytes over budget %d", ic.Bytes, ic.CapBytes)
	}
}

// TestIndexCacheDisabled checks that a negative budget turns the cache
// off: single-document requests still work, metrics report it disabled.
func TestIndexCacheDisabled(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, IndexCacheBytes: -1})
	if s.IndexCache() != nil {
		t.Fatal("negative budget should disable the index cache")
	}
	code, body := post(t, ts.URL+"/query?path="+url.QueryEscape("$.v"), "application/json", `{"v": 3}`)
	if code != http.StatusOK || body != `{"record":0,"value":3}`+"\n" {
		t.Fatalf("status %d body %q", code, body)
	}
	if snap := getMetrics(t, ts.URL); snap.IndexCache.Enabled {
		t.Fatal("metrics report index cache enabled")
	}
}

// TestIndexCacheMetricsCountRepeatedDocument pins the hit accounting:
// posting the same single document N times yields one miss and N-1 hits.
func TestIndexCacheMetricsCountRepeatedDocument(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	doc := `{"a": {"b": 42}}`
	u := ts.URL + "/query?path=" + url.QueryEscape("$.a.b")
	const n = 5
	for i := 0; i < n; i++ {
		code, body := post(t, u, "application/json", doc)
		if code != http.StatusOK || body != `{"record":0,"value":42}`+"\n" {
			t.Fatalf("post %d: status %d body %q", i, code, body)
		}
	}
	ic := getMetrics(t, ts.URL).IndexCache
	if ic.Misses != 1 || ic.Hits != n-1 {
		t.Fatalf("hits/misses = %d/%d, want %d/1", ic.Hits, ic.Misses, n-1)
	}
	if ic.BytesIndexed != int64(len(doc)) {
		t.Fatalf("BytesIndexed = %d, want %d", ic.BytesIndexed, len(doc))
	}
	if ic.HitRate == 0 {
		t.Fatal("hit rate should be positive")
	}
}
