package server

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"time"

	"jsonski"
	"jsonski/internal/telemetry"
)

// handleDoc serves GET/POST /doc?get=<dot.path>: one on-demand lookup
// into the request body via the lazy Document API. Unlike /query this
// compiles nothing — the dot path is walked hop by hop with the same
// fast-forward movements a compiled query would use, and only the bytes
// on the path to the requested value are touched. The body is resolved
// through the same two index tiers as single-document /query requests
// (persistent catalog, then in-memory index cache), so a repeat lookup
// into a hot document navigates over prebuilt word masks.
func (s *Server) handleDoc(w http.ResponseWriter, r *http.Request) {
	s.m.docRequests.Add(1)
	path := r.URL.Query().Get("get")
	if path == "" {
		s.jsonError(w, http.StatusBadRequest, errors.New("missing ?get= query parameter"))
		return
	}
	segs, err := jsonski.ParseDotPath(path)
	if err != nil {
		s.jsonError(w, http.StatusBadRequest, err)
		return
	}

	s.m.inFlight.Add(1)
	defer s.m.inFlight.Add(-1)
	var body io.Reader = r.Body
	if s.cfg.MaxBodyBytes > 0 {
		body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	}
	body = &countingReader{r: body, n: &s.m.bytesIn}
	data, err := io.ReadAll(body)
	if err != nil {
		s.requestError(w, err)
		return
	}
	data = bytes.TrimSpace(data)
	if len(data) == 0 {
		s.jsonError(w, http.StatusBadRequest, errors.New("empty body"))
		return
	}

	rsp := telemetry.SpanFromContext(r.Context())
	ix := s.lookupIndex(rsp, data)
	if ix != nil {
		defer ix.Release()
	}
	sp := rsp.StartChild("engine.run")
	sp.SetBool("jsonski.indexed", ix != nil)
	var doc *jsonski.Document
	if ix != nil {
		doc = jsonski.OpenIndexed(ix)
	} else {
		doc = jsonski.Open(data)
	}
	if sp.Recording() {
		// Sampled: record the bounded movement log so the span carries
		// the hop-by-hop fast-forward events, as /query spans do.
		doc.Explain(spanTraceEvents)
	}
	t0 := time.Now()
	raw, err := doc.Lookup(segs...).Raw()
	if cerr := doc.Close(); err == nil {
		err = cerr
	}
	st := doc.Stats()
	s.m.recordLatency.Observe(time.Since(t0))
	s.m.addStats(st)
	s.finishEngineSpan(sp, 0, st, err)
	if err != nil {
		s.m.recordErrors.Add(1)
		status := http.StatusBadRequest
		if errors.Is(err, jsonski.ErrNotFound) {
			status = http.StatusNotFound
		}
		s.jsonError(w, status, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.write(w, raw)
	s.write(w, []byte("\n"))
}
