package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func post(t *testing.T, url, contentType, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, contentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func getMetrics(t *testing.T, base string) metricsSnapshot {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap metricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestQuerySingleJSONRecord(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	code, body := post(t, ts.URL+"/query?path="+url.QueryEscape("$.a.b"),
		"application/json", `{"a": {"b": 7}, "pad": [1, 2, 3]}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if body != `{"record":0,"value":7}`+"\n" {
		t.Fatalf("body = %q", body)
	}
}

func TestQueryNDJSONOrdered(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	var in strings.Builder
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&in, `{"pad": "%s", "v": %d}`+"\n", strings.Repeat("x", i%31), i)
	}
	code, body := post(t, ts.URL+"/query?path="+url.QueryEscape("$.v"), "application/x-ndjson", in.String())
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 200 {
		t.Fatalf("got %d lines", len(lines))
	}
	for i, ln := range lines {
		want := fmt.Sprintf(`{"record":%d,"value":%d}`, i, i)
		if ln != want {
			t.Fatalf("line %d = %q, want %q", i, ln, want)
		}
	}
}

func TestQueryNoMatchesIsEmptyStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	code, body := post(t, ts.URL+"/query?path="+url.QueryEscape("$.missing"), "", `{"v": 1}`+"\n")
	if code != http.StatusOK || body != "" {
		t.Fatalf("status %d body %q", code, body)
	}
}

func TestQueryBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for name, u := range map[string]string{
		"missing path": ts.URL + "/query",
		"bad path":     ts.URL + "/query?path=" + url.QueryEscape("$["),
	} {
		code, body := post(t, u, "", `{"v": 1}`)
		if code != http.StatusBadRequest || !strings.Contains(body, `"error"`) {
			t.Fatalf("%s: status %d body %q", name, code, body)
		}
	}
	resp, err := http.Get(ts.URL + "/query?path=$.v")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query status %d", resp.StatusCode)
	}
}

func TestQueryMalformedSingleRecordIs400(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	code, body := post(t, ts.URL+"/query?path="+url.QueryEscape("$.v.x"),
		"application/json", `{"v": {`)
	if code != http.StatusBadRequest || !strings.Contains(body, `"error"`) {
		t.Fatalf("status %d body %q", code, body)
	}
}

func TestQueryMalformedRecordBecomesErrorLineAndStreamContinues(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	in := `{"v": {"x": 1}}` + "\n" + `{"v": {"x": 2}}` + "\n" + `{"v": {` + "\n" + `{"v": {"x": 4}}` + "\n"
	code, body := post(t, ts.URL+"/query?path="+url.QueryEscape("$.v.x"), "", in)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	// Two match lines, the record-2 error line, then record 3's match:
	// NDJSON records are independent, so the stream continues.
	if len(lines) != 4 {
		t.Fatalf("lines = %q", lines)
	}
	var errLine struct {
		Record int    `json:"record"`
		Error  string `json:"error"`
	}
	if err := json.Unmarshal([]byte(lines[2]), &errLine); err != nil {
		t.Fatal(err)
	}
	if errLine.Record != 2 || errLine.Error == "" {
		t.Fatalf("error line = %+v", errLine)
	}
	if lines[3] != `{"record":3,"value":4}` {
		t.Fatalf("stream did not continue past the bad record: %q", lines[3])
	}
}

func TestQueryOversizedBody(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 64})
	big := `{"v": "` + strings.Repeat("x", 200) + `"}`
	code, _ := post(t, ts.URL+"/query?path="+url.QueryEscape("$.v"), "application/json", big)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("single-record status = %d", code)
	}
	// NDJSON mode: the first record fits and streams; the limit trips
	// mid-body and must surface as a trailing error line.
	in := `{"v": 1}` + "\n" + big + "\n"
	code, body := post(t, ts.URL+"/query?path="+url.QueryEscape("$.v"), "", in)
	if code != http.StatusOK {
		t.Fatalf("ndjson status = %d (%s)", code, body)
	}
	if !strings.Contains(body, `{"record":0,"value":1}`) || !strings.Contains(body, `"error"`) {
		t.Fatalf("ndjson body = %q", body)
	}
}

func TestQueryStreamsIncrementally(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	pr, pw := io.Pipe()
	req, err := http.NewRequest("POST", ts.URL+"/query?path="+url.QueryEscape("$.v"), pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	type res struct {
		resp *http.Response
		err  error
	}
	done := make(chan res, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		done <- res{resp, err}
	}()
	if _, err := io.WriteString(pw, `{"v": 1}`+"\n"); err != nil {
		t.Fatal(err)
	}
	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}
	defer r.resp.Body.Close()
	sc := bufio.NewScanner(r.resp.Body)
	if !sc.Scan() || sc.Text() != `{"record":0,"value":1}` {
		t.Fatalf("first line = %q (err %v)", sc.Text(), sc.Err())
	}
	// The first match arrived while the body is still open: the second
	// record has not even been sent yet.
	if _, err := io.WriteString(pw, `{"v": 2}`+"\n"); err != nil {
		t.Fatal(err)
	}
	if !sc.Scan() || sc.Text() != `{"record":1,"value":2}` {
		t.Fatalf("second line = %q", sc.Text())
	}
	pw.Close()
	if sc.Scan() {
		t.Fatalf("unexpected extra line %q", sc.Text())
	}
}

func TestQueryClientDisconnectMidStream(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2})
	pr, pw := io.Pipe()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST",
		ts.URL+"/query?path="+url.QueryEscape("$.v"), pr)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	io.WriteString(pw, `{"v": 1}`+"\n")
	// Cancel while the handler is blocked reading the next record.
	time.Sleep(20 * time.Millisecond)
	cancel()
	pw.Close()
	<-done
	// The handler must notice and exit, releasing its in-flight slot.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if snap := getMetrics(t, ts.URL); snap.Requests.InFlight == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("handler did not exit after client disconnect")
		}
		time.Sleep(10 * time.Millisecond)
	}
	_ = srv
}

func TestMulti(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	u := ts.URL + "/multi?path=" + url.QueryEscape("$.a") + "&path=" + url.QueryEscape("$.b")
	in := `{"a": 1, "b": "x"}` + "\n" + `{"b": "y"}` + "\n"
	code, body := post(t, u, "", in)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	want := `{"record":0,"query":0,"value":1}` + "\n" +
		`{"record":0,"query":1,"value":"x"}` + "\n" +
		`{"record":1,"query":1,"value":"y"}` + "\n"
	if body != want {
		t.Fatalf("body = %q", body)
	}
	if code, _ := post(t, ts.URL+"/multi", "", in); code != http.StatusBadRequest {
		t.Fatalf("missing paths status = %d", code)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestMetricsReportCacheHitAndFastForward(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	// A padded record so fast-forwarding has something to skip.
	in := `{"skipme": {"deep": [1, 2, 3, 4, 5, 6, 7, 8]}, "v": 42, "tail": "` +
		strings.Repeat("y", 512) + `"}` + "\n"
	u := ts.URL + "/query?path=" + url.QueryEscape("$.v")
	if code, body := post(t, u, "", in); code != http.StatusOK || !strings.Contains(body, "42") {
		t.Fatalf("first request: %d %q", code, body)
	}
	snap1 := getMetrics(t, ts.URL)
	if snap1.Cache.Misses == 0 || snap1.Cache.Hits != 0 {
		t.Fatalf("first-request cache stats: %+v", snap1.Cache)
	}
	if code, _ := post(t, u, "", in); code != http.StatusOK {
		t.Fatal("second request failed")
	}
	snap := getMetrics(t, ts.URL)
	if snap.Cache.Hits == 0 {
		t.Fatalf("second identical request should hit cache: %+v", snap.Cache)
	}
	if snap.IO.BytesIn == 0 || snap.IO.BytesOut == 0 {
		t.Fatalf("io counters: %+v", snap.IO)
	}
	if snap.Engine.Records != 2 || snap.Engine.Matches != 2 {
		t.Fatalf("engine counters: %+v", snap.Engine)
	}
	if snap.Engine.FastForwardRatio <= 0 || snap.Engine.FastForwardRatio > 1 {
		t.Fatalf("fast-forward ratio = %v", snap.Engine.FastForwardRatio)
	}
	if snap.Workers.Count != 2 || snap.Workers.QueueCapacity == 0 {
		t.Fatalf("worker gauges: %+v", snap.Workers)
	}
	if snap.Requests.Query != 2 {
		t.Fatalf("request count: %+v", snap.Requests)
	}
}

// TestConcurrentRequestsRace hammers one server — and through it one
// shared cache and worker pool — from many goroutines. Run under -race.
func TestConcurrentRequestsRace(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, CacheSize: 4})
	paths := []string{"$.a", "$.b", "$.c[0]", "$.d.e", "$.f", "$.g[*]"}
	var in strings.Builder
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&in, `{"a": %d, "b": "s", "c": [1], "d": {"e": null}, "f": true, "g": [%d]}`+"\n", i, i)
	}
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				p := paths[(w+i)%len(paths)]
				var u string
				if i%3 == 0 {
					u = ts.URL + "/multi?path=" + url.QueryEscape(p) +
						"&path=" + url.QueryEscape(paths[(w+i+1)%len(paths)])
				} else {
					u = ts.URL + "/query?path=" + url.QueryEscape(p)
				}
				resp, err := http.Post(u, "", strings.NewReader(in.String()))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status %d for %s", resp.StatusCode, u)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	snap := getMetrics(t, ts.URL)
	if snap.Requests.Errors != 0 || snap.Engine.RecordErrors != 0 {
		t.Fatalf("errors under load: %+v", snap.Requests)
	}
}
