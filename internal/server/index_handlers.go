package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"mime"
	"net/http"
	"strconv"

	"jsonski"
)

// indexEntryJSON is the /index wire form of one cataloged sidecar.
type indexEntryJSON struct {
	jsonski.CatalogEntry
	Created bool `json:"created,omitempty"`
}

// errNoCatalog is returned by the /index endpoints when the daemon was
// started without -index-dir.
var errNoCatalog = errors.New("no index catalog configured (start with -index-dir)")

// requireCatalog rejects /index requests on a catalog-less server.
func (s *Server) requireCatalog(w http.ResponseWriter) bool {
	if s.catalog == nil {
		s.jsonError(w, http.StatusServiceUnavailable, errNoCatalog)
		return false
	}
	return true
}

// handleIndexPut serves POST /index: build, persist, and map the
// structural index of the request body. A Content-Type of
// application/json marks a single JSON record (whitespace-trimmed, the
// same normalization /query applies, so a later query hits the
// catalog); anything else is treated as an NDJSON corpus and persisted
// with its per-record span table. Responds 201 with the entry info, or
// 200 when the document was already cataloged.
func (s *Server) handleIndexPut(w http.ResponseWriter, r *http.Request) {
	if !s.requireCatalog(w) {
		return
	}
	var body io.Reader = r.Body
	if s.cfg.MaxBodyBytes > 0 {
		body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	}
	body = &countingReader{r: body, n: &s.m.bytesIn}
	data, err := io.ReadAll(body)
	if err != nil {
		s.requestError(w, err)
		return
	}
	var spans []jsonski.Span
	if ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type")); ct == "application/json" {
		data = bytes.TrimSpace(data)
	} else {
		spans = jsonski.RecordSpans(data)
	}
	if len(data) == 0 {
		s.jsonError(w, http.StatusBadRequest, errors.New("empty body"))
		return
	}
	hash := jsonski.ContentHash(data)
	created := !s.catalog.Contains(hash)
	ix, _, err := s.catalog.Put(data, spans)
	if err != nil {
		s.jsonError(w, http.StatusInternalServerError, err)
		return
	}
	ix.Release()
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	s.writeIndexJSON(w, status, indexEntryJSON{
		CatalogEntry: s.entryInfo(hash),
		Created:      created,
	})
}

// entryInfo finds hash's entry in a fresh catalog snapshot. The entry
// can only be missing if it was evicted or deleted between Put and the
// snapshot; the zero value (with the hash filled in) reports that
// honestly.
func (s *Server) entryInfo(hash uint64) jsonski.CatalogEntry {
	key := strconv.FormatUint(hash, 16)
	for len(key) < 16 {
		key = "0" + key
	}
	for _, e := range s.catalog.Entries() {
		if e.Hash == key {
			return e
		}
	}
	return jsonski.CatalogEntry{Hash: key}
}

// handleIndexList serves GET /index: the catalog directory, counters,
// and every entry most-recently-used first.
func (s *Server) handleIndexList(w http.ResponseWriter, r *http.Request) {
	if !s.requireCatalog(w) {
		return
	}
	st := s.catalog.Stats()
	out := struct {
		Dir     string                 `json:"dir"`
		Stats   catalogJSON            `json:"stats"`
		Entries []jsonski.CatalogEntry `json:"entries"`
	}{
		Dir:     s.catalog.Dir(),
		Stats:   catalogFrom(st, true),
		Entries: s.catalog.Entries(),
	}
	if out.Entries == nil {
		out.Entries = []jsonski.CatalogEntry{}
	}
	s.writeIndexJSON(w, http.StatusOK, out)
}

// parseIndexHash parses the {hash} path segment (16 hex digits, the
// sidecar basename).
func parseIndexHash(r *http.Request) (uint64, error) {
	h, err := strconv.ParseUint(r.PathValue("hash"), 16, 64)
	if err != nil {
		return 0, errors.New("malformed index hash (want 16 hex digits)")
	}
	return h, nil
}

// handleIndexGet serves GET /index/{hash}.
func (s *Server) handleIndexGet(w http.ResponseWriter, r *http.Request) {
	if !s.requireCatalog(w) {
		return
	}
	hash, err := parseIndexHash(r)
	if err != nil {
		s.jsonError(w, http.StatusBadRequest, err)
		return
	}
	if !s.catalog.Contains(hash) {
		s.jsonError(w, http.StatusNotFound, errors.New("no such index"))
		return
	}
	s.writeIndexJSON(w, http.StatusOK, s.entryInfo(hash))
}

// handleIndexDelete serves DELETE /index/{hash}: drop the entry and
// unlink its sidecar. Readers still streaming over the mapped index are
// unaffected; the mapping lives until their last release.
func (s *Server) handleIndexDelete(w http.ResponseWriter, r *http.Request) {
	if !s.requireCatalog(w) {
		return
	}
	hash, err := parseIndexHash(r)
	if err != nil {
		s.jsonError(w, http.StatusBadRequest, err)
		return
	}
	if !s.catalog.Delete(hash) {
		s.jsonError(w, http.StatusNotFound, errors.New("no such index"))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// writeIndexJSON renders a /index response document.
func (s *Server) writeIndexJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	s.write(w, append(b, '\n'))
}
