package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- Prometheus exposition validation -------------------------------

// promSample is one parsed exposition sample.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parseProm is a strict-enough parser for the text exposition format
// 0.0.4: it validates HELP/TYPE ordering, label syntax, and float
// values, returning all samples grouped under their family name.
func parseProm(t *testing.T, body string) (map[string]string, []promSample) {
	t.Helper()
	types := map[string]string{} // family -> type
	helped := map[string]bool{}
	var samples []promSample
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || parts[0] == "" {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			helped[parts[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram", "untyped":
			default:
				t.Fatalf("line %d: unknown TYPE %q", ln+1, parts[1])
			}
			if !helped[parts[0]] {
				t.Fatalf("line %d: TYPE for %s before its HELP", ln+1, parts[0])
			}
			types[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		}
		s := parsePromSample(t, ln+1, line)
		if family(s.name, types) == "" {
			t.Fatalf("line %d: sample %s has no preceding TYPE", ln+1, s.name)
		}
		samples = append(samples, s)
	}
	return types, samples
}

// family maps a sample name to its declared family (handling the
// _bucket/_sum/_count suffixes of histogram families).
func family(name string, types map[string]string) string {
	if _, ok := types[name]; ok {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return ""
}

func parsePromSample(t *testing.T, ln int, line string) promSample {
	t.Helper()
	s := promSample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		t.Fatalf("line %d: no value separator: %q", ln, line)
	} else {
		s.name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.LastIndex(rest, "}")
		if end < 0 {
			t.Fatalf("line %d: unterminated label set: %q", ln, line)
		}
		for _, pair := range splitLabels(rest[1:end]) {
			eq := strings.Index(pair, "=")
			if eq < 0 {
				t.Fatalf("line %d: malformed label %q", ln, pair)
			}
			k, v := pair[:eq], pair[eq+1:]
			if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				t.Fatalf("line %d: unquoted label value %q", ln, v)
			}
			unq, err := strconv.Unquote(v)
			if err != nil {
				t.Fatalf("line %d: bad label escaping %q: %v", ln, v, err)
			}
			s.labels[k] = unq
		}
		rest = rest[end+1:]
	}
	valStr := strings.TrimSpace(rest)
	v, err := parsePromValue(valStr)
	if err != nil {
		t.Fatalf("line %d: bad value %q: %v", ln, valStr, err)
	}
	s.value = v
	return s
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(body string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, body[start:i])
				start = i + 1
			}
		}
	}
	if start < len(body) {
		out = append(out, body[start:])
	}
	return out
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

func getProm(t *testing.T, base string) (string, map[string]string, []promSample) {
	t.Helper()
	resp, err := http.Get(base + "/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	types, samples := parseProm(t, string(b))
	return string(b), types, samples
}

// TestPromExposition drives real work through the server, then
// validates the full exposition: format, required families, histogram
// invariants, and agreement with the JSON snapshot.
func TestPromExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	body := strings.Repeat(`{"skip": {"a": [1, 2, 3]}, "v": 9}`+"\n", 40)
	if code, out := post(t, ts.URL+"/query?path="+url.QueryEscape("$.v"), "application/x-ndjson", body); code != 200 {
		t.Fatalf("query failed: %d %s", code, out)
	}

	text, types, samples := getProm(t, ts.URL)
	byName := map[string][]promSample{}
	for _, s := range samples {
		byName[s.name] = append(byName[s.name], s)
	}

	for _, fam := range []string{
		"jsonski_requests_total", "jsonski_request_errors_total",
		"jsonski_in_flight_requests", "jsonski_io_bytes_total",
		"jsonski_records_total", "jsonski_matches_total",
		"jsonski_engine_input_bytes_total", "jsonski_skipped_bytes_total",
		"jsonski_fast_forward_ratio", "jsonski_cache_events_total",
		"jsonski_worker_queue_depth", "jsonski_worker_queue_capacity",
		"jsonski_request_duration_seconds", "jsonski_record_duration_seconds",
		"jsonski_uptime_seconds", "jsonski_build_info",
	} {
		if _, ok := types[fam]; !ok {
			t.Errorf("missing family %s\n%s", fam, text)
		}
	}

	// All five paper groups must be present as labels.
	groups := map[string]bool{}
	for _, s := range byName["jsonski_skipped_bytes_total"] {
		groups[s.labels["group"]] = true
	}
	for _, g := range []string{"G1", "G2", "G3", "G4", "G5"} {
		if !groups[g] {
			t.Errorf("skipped_bytes_total missing group %s (have %v)", g, groups)
		}
	}

	// Histogram invariants for both latency families.
	for _, fam := range []string{"jsonski_request_duration_seconds", "jsonski_record_duration_seconds"} {
		validateHistogram(t, fam, byName)
	}

	// The exposition and JSON snapshot must agree (same single read path).
	snap := getMetrics(t, ts.URL)
	var recs float64
	for _, s := range byName["jsonski_records_total"] {
		recs = s.value
	}
	if int64(recs) != snap.Engine.Records && snap.Engine.Records != 40 {
		t.Errorf("prom records %v vs json %d", recs, snap.Engine.Records)
	}
}

// validateHistogram checks le ordering, cumulative monotonicity, and
// +Inf == _count per label set of one histogram family.
func validateHistogram(t *testing.T, fam string, byName map[string][]promSample) {
	t.Helper()
	buckets := byName[fam+"_bucket"]
	counts := byName[fam+"_count"]
	if len(buckets) == 0 || len(counts) == 0 {
		t.Errorf("%s: no bucket/count samples", fam)
		return
	}
	// Group buckets by their non-le label signature.
	sig := func(ls map[string]string) string {
		keys := make([]string, 0, len(ls))
		for k := range ls {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var sb strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&sb, "%s=%s;", k, ls[k])
		}
		return sb.String()
	}
	series := map[string][]promSample{}
	for _, b := range buckets {
		series[sig(b.labels)] = append(series[sig(b.labels)], b)
	}
	countBySig := map[string]float64{}
	for _, c := range counts {
		countBySig[sig(c.labels)] = c.value
	}
	for sg, bs := range series {
		lastLe, lastCum := -1.0, -1.0
		sawInf := false
		for _, b := range bs {
			leStr := b.labels["le"]
			le, err := parsePromValue(leStr)
			if err != nil {
				t.Errorf("%s{%s}: bad le %q", fam, sg, leStr)
				continue
			}
			if le <= lastLe {
				t.Errorf("%s{%s}: le not increasing (%v after %v)", fam, sg, le, lastLe)
			}
			if b.value < lastCum {
				t.Errorf("%s{%s}: cumulative count decreased (%v after %v)", fam, sg, b.value, lastCum)
			}
			lastLe, lastCum = le, b.value
			if leStr == "+Inf" {
				sawInf = true
				if b.value != countBySig[sg] {
					t.Errorf("%s{%s}: +Inf bucket %v != count %v", fam, sg, b.value, countBySig[sg])
				}
			}
		}
		if !sawInf {
			t.Errorf("%s{%s}: missing +Inf bucket", fam, sg)
		}
	}
}

// TestPromCountersMonotonic scrapes twice around more work and checks
// that every counter-typed sample is non-decreasing.
func TestPromCountersMonotonic(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	work := func() {
		post(t, ts.URL+"/query?path="+url.QueryEscape("$.v"), "application/x-ndjson",
			strings.Repeat(`{"v": 1}`+"\n", 10))
	}
	work()
	_, types1, samples1 := getProm(t, ts.URL)
	work()
	_, _, samples2 := getProm(t, ts.URL)
	key := func(s promSample) string {
		keys := make([]string, 0, len(s.labels))
		for k, v := range s.labels {
			keys = append(keys, k+"="+v)
		}
		sort.Strings(keys)
		return s.name + "{" + strings.Join(keys, ",") + "}"
	}
	first := map[string]float64{}
	for _, s := range samples1 {
		first[key(s)] = s.value
	}
	for _, s := range samples2 {
		fam := family(s.name, types1)
		if types1[fam] != "counter" && types1[fam] != "histogram" {
			continue
		}
		if s.name == fam+"_sum" {
			continue // float sums can stay equal; only counts are integral
		}
		if prev, ok := first[key(s)]; ok && s.value < prev {
			t.Errorf("%s went backwards: %v -> %v", key(s), prev, s.value)
		}
	}
}

// --- readiness -------------------------------------------------------

func TestReadyz(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh server readyz = %d", resp.StatusCode)
	}
	// Saturate the pool: one task occupies the single worker, one more
	// fills the queue.
	block := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		if err := s.pool.submit(context.Background(), func() { defer wg.Done(); <-block }); err != nil {
			t.Fatal(err)
		}
	}
	// Wait until the worker has dequeued the first task and the second
	// sits in the queue.
	deadline := time.Now().Add(2 * time.Second)
	for s.pool.queueDepth() < s.pool.queueCap() {
		if time.Now().After(deadline) {
			t.Fatalf("queue never saturated (depth %d, cap %d)", s.pool.queueDepth(), s.pool.queueCap())
		}
		time.Sleep(time.Millisecond)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated readyz = %d, want 503", resp.StatusCode)
	}
	close(block)
	wg.Wait()

	// Healthz stays 200 throughout; readyz flips permanently on
	// BeginShutdown.
	s.BeginShutdown()
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown readyz = %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200 even during shutdown", resp.StatusCode)
	}
}

// --- explain trailer -------------------------------------------------

// explainTrailerLine is the decoded {"explain": ...} trailer.
type explainTrailerLine struct {
	Explain *struct {
		Events []struct {
			Record int    `json:"record"`
			Group  string `json:"group"`
			Func   string `json:"func"`
			Start  int    `json:"start"`
			End    int    `json:"end"`
			Bytes  int    `json:"bytes"`
		} `json:"events"`
		Dropped int `json:"dropped"`
	} `json:"explain"`
}

func TestQueryExplainNDJSONTrailer(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	body := `{"skip": {"a": 1}, "v": 10}` + "\n" + `{"skip": {"b": 2}, "v": 20}` + "\n"
	code, out := post(t, ts.URL+"/query?path="+url.QueryEscape("$.v")+"&explain=1",
		"application/x-ndjson", body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 2 match lines + trailer, got %d: %q", len(lines), out)
	}
	var trailer explainTrailerLine
	if err := json.Unmarshal([]byte(lines[2]), &trailer); err != nil || trailer.Explain == nil {
		t.Fatalf("last line is not an explain trailer: %q (%v)", lines[2], err)
	}
	if len(trailer.Explain.Events) == 0 {
		t.Fatal("trailer has no events")
	}
	recs := map[int]bool{}
	for _, e := range trailer.Explain.Events {
		recs[e.Record] = true
		if e.Bytes != e.End-e.Start {
			t.Fatalf("event bytes %d != end-start %d", e.Bytes, e.End-e.Start)
		}
		if e.Group == "" || e.Func == "" {
			t.Fatalf("event missing group/func: %+v", e)
		}
	}
	if !recs[0] || !recs[1] {
		t.Fatalf("events should cover both records, got %v", recs)
	}
}

func TestQueryExplainSingleDocument(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	code, out := post(t, ts.URL+"/query?path="+url.QueryEscape("$.v")+"&explain=1",
		"application/json", `{"skip": [1, 2, 3], "v": 5}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != `{"record":0,"value":5}` {
		t.Fatalf("match line = %q", lines[0])
	}
	var trailer explainTrailerLine
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &trailer); err != nil || trailer.Explain == nil {
		t.Fatalf("no explain trailer: %q", lines[len(lines)-1])
	}
}

func TestMultiExplainRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	code, out := post(t, ts.URL+"/multi?path="+url.QueryEscape("$.v")+"&explain=1",
		"application/x-ndjson", `{"v": 1}`+"\n")
	if code != http.StatusBadRequest {
		t.Fatalf("status %d: %s", code, out)
	}
	if !strings.Contains(out, "explain") {
		t.Fatalf("error should mention explain: %s", out)
	}
}

// TestExplainTrailerBounded posts enough adversarial records that the
// global event cap engages and the trailer reports drops.
func TestExplainTrailerBounded(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	// Each record has many skippable attributes -> many events.
	var rec strings.Builder
	rec.WriteString(`{`)
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&rec, `"k%d": %d, `, i, i)
	}
	rec.WriteString(`"v": 1}`)
	body := strings.Repeat(rec.String()+"\n", 40)
	code, out := post(t, ts.URL+"/query?path="+url.QueryEscape("$.v")+"&explain=1",
		"application/x-ndjson", body)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var trailer explainTrailerLine
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &trailer); err != nil || trailer.Explain == nil {
		t.Fatalf("no trailer: %q", lines[len(lines)-1])
	}
	if n := len(trailer.Explain.Events); n > maxExplainEvents {
		t.Fatalf("trailer has %d events, cap is %d", n, maxExplainEvents)
	}
}

// --- concurrency -----------------------------------------------------

// TestConcurrentQueryAndScrape hammers /query, /metrics, and
// /metrics/prom concurrently; run under -race this is the torn-pair
// and lock-free-histogram safety net.
func TestConcurrentQueryAndScrape(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	body := strings.Repeat(`{"skip": {"a": [1, 2]}, "v": 3}`+"\n", 20)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/query?path="+url.QueryEscape("$.v"),
					"application/x-ndjson", strings.NewReader(body))
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	scrape := func(path string, check func(*testing.T, string)) {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(ts.URL + path)
			if err != nil {
				continue
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			check(t, string(b))
		}
	}
	wg.Add(2)
	go scrape("/metrics", func(t *testing.T, body string) {
		var snap metricsSnapshot
		if err := json.Unmarshal([]byte(body), &snap); err != nil {
			t.Errorf("bad /metrics JSON: %v", err)
			return
		}
		// The consistency invariant: ratios derived from one snapshot
		// can undershoot but never exceed 1.
		if snap.Engine.FastForwardRatio > 1 {
			t.Errorf("fast-forward ratio %v > 1 (torn snapshot)", snap.Engine.FastForwardRatio)
		}
	})
	go scrape("/metrics/prom", func(t *testing.T, body string) {
		if !strings.Contains(body, "jsonski_records_total") {
			t.Error("prom scrape missing records_total")
		}
	})
	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// --- slow-query log --------------------------------------------------

func TestAccessLogAndSlowQuery(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	_, ts := newTestServer(t, Config{Workers: 1, Logger: logger, SlowQuery: time.Nanosecond})
	post(t, ts.URL+"/query?path="+url.QueryEscape("$.v"), "application/x-ndjson", `{"v": 1}`+"\n")
	out := buf.String()
	if !strings.Contains(out, "slow query") {
		t.Fatalf("1ns threshold should mark every query slow; log:\n%s", out)
	}
	if !strings.Contains(out, "path=/query") {
		t.Fatalf("log missing request path:\n%s", out)
	}
}

type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}
