package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsTasks(t *testing.T) {
	p := newWorkerPool(4, 8)
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		if err := p.submit(context.Background(), func() {
			n.Add(1)
			wg.Done()
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if n.Load() != 100 {
		t.Fatalf("ran %d tasks", n.Load())
	}
	if p.workers() != 4 || p.queueCap() != 8 {
		t.Fatalf("gauges: workers=%d cap=%d", p.workers(), p.queueCap())
	}
	p.close()
}

func TestPoolCloseDrainsAcceptedTasks(t *testing.T) {
	p := newWorkerPool(1, 16)
	var n atomic.Int64
	block := make(chan struct{})
	p.submit(context.Background(), func() { <-block })
	for i := 0; i < 10; i++ {
		if err := p.submit(context.Background(), func() { n.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	close(block)
	p.close()
	if n.Load() != 10 {
		t.Fatalf("drained %d of 10 accepted tasks", n.Load())
	}
	if err := p.submit(context.Background(), func() {}); !errors.Is(err, errPoolClosed) {
		t.Fatalf("submit after close: %v", err)
	}
}

func TestPoolSubmitBlocksAndHonorsContext(t *testing.T) {
	p := newWorkerPool(1, 1)
	defer p.close()
	block := make(chan struct{})
	defer close(block)
	p.submit(context.Background(), func() { <-block }) // occupies the worker
	p.submit(context.Background(), func() {})          // fills the queue
	if d := p.queueDepth(); d != 1 {
		t.Fatalf("queue depth = %d", d)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := p.submit(ctx, func() {})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Fatal("submit did not block until the deadline")
	}
}
