package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// nullWriter is a ResponseWriter that discards the body, so benchmarks
// measure the handler's own allocations rather than a recorder's.
type nullWriter struct {
	h http.Header
	n int64
}

func (w *nullWriter) Header() http.Header {
	if w.h == nil {
		w.h = make(http.Header)
	}
	return w.h
}
func (w *nullWriter) Write(b []byte) (int, error) { w.n += int64(len(b)); return len(b), nil }
func (w *nullWriter) WriteHeader(int)             {}
func (w *nullWriter) Flush()                      {}

// benchDoc is a single document with a handful of matches for
// $.items[*].name plus bulk the query fast-forwards over.
func benchDoc() []byte {
	var b bytes.Buffer
	b.WriteString(`{"meta":{"version":3,"flags":[1,2,3,4,5,6,7,8]},"items":[`)
	for i := 0; i < 32; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"id":%d,"name":"item-%04d","payload":"%s","tags":["a","b","c"]}`,
			i, i, strings.Repeat("x", 120))
	}
	b.WriteString(`]}`)
	return b.Bytes()
}

func benchServer(b *testing.B) *Server {
	b.Helper()
	s, err := New(Config{Workers: 2, IndexCacheBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	return s
}

// BenchmarkServerQuerySingleDoc measures the /query hot path for a
// single-document body: one request, matches rendered as NDJSON lines.
func BenchmarkServerQuerySingleDoc(b *testing.B) {
	s := benchServer(b)
	doc := benchDoc()
	b.ReportAllocs()
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/query?path=$.items[*].name", bytes.NewReader(doc))
		req.Header.Set("Content-Type", "application/json")
		var w nullWriter
		s.ServeHTTP(&w, req)
	}
}

// BenchmarkServerQueryStream measures the /query NDJSON streaming path:
// many small records per request, fanned across the worker pool.
func BenchmarkServerQueryStream(b *testing.B) {
	s := benchServer(b)
	var body bytes.Buffer
	for i := 0; i < 64; i++ {
		fmt.Fprintf(&body, `{"id":%d,"name":"rec-%04d","pad":"%s"}`+"\n", i, i, strings.Repeat("y", 80))
	}
	stream := body.Bytes()
	b.ReportAllocs()
	b.SetBytes(int64(len(stream)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/query?path=$.name", bytes.NewReader(stream))
		var w nullWriter
		s.ServeHTTP(&w, req)
	}
}
