package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"jsonski"
)

const catalogDoc = `{"user":{"name":"ada","id":7},"text":"bit-parallel","retweets":41}`

func doReq(t *testing.T, method, url, contentType, body string) (int, string) {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := fmt.Fprint(&sb, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, sb.String()
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	b := make([]byte, 0, 1024)
	buf := make([]byte, 1024)
	for {
		n, err := resp.Body.Read(buf)
		b = append(b, buf[:n]...)
		if err != nil {
			return string(b)
		}
	}
}

// TestIndexAPIWithoutCatalog: every /index endpoint answers 503 when
// the daemon runs without -index-dir.
func TestIndexAPIWithoutCatalog(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, rq := range []struct{ method, path string }{
		{"POST", "/index"},
		{"GET", "/index"},
		{"GET", "/index/0123456789abcdef"},
		{"DELETE", "/index/0123456789abcdef"},
	} {
		code, body := doReq(t, rq.method, ts.URL+rq.path, "application/json", catalogDoc)
		if code != http.StatusServiceUnavailable {
			t.Fatalf("%s %s without catalog: %d %s", rq.method, rq.path, code, body)
		}
	}
}

// TestIndexAPILifecycle drives POST → GET → re-POST → DELETE through
// the management API.
func TestIndexAPILifecycle(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{Workers: 1, IndexDir: dir})
	hash := fmt.Sprintf("%016x", jsonski.ContentHash([]byte(catalogDoc)))

	code, body := doReq(t, "POST", ts.URL+"/index", "application/json", catalogDoc)
	if code != http.StatusCreated {
		t.Fatalf("POST /index: %d %s", code, body)
	}
	var ent struct {
		Hash     string `json:"hash"`
		DocBytes int    `json:"doc_bytes"`
		Created  bool   `json:"created"`
	}
	if err := json.Unmarshal([]byte(body), &ent); err != nil {
		t.Fatal(err)
	}
	if ent.Hash != hash || !ent.Created || ent.DocBytes != len(catalogDoc) {
		t.Fatalf("POST /index entry: %+v (want hash %s)", ent, hash)
	}

	// Idempotent re-POST: 200, nothing rebuilt.
	code, body = doReq(t, "POST", ts.URL+"/index", "application/json", catalogDoc)
	if code != http.StatusOK {
		t.Fatalf("re-POST /index: %d %s", code, body)
	}

	code, body = doReq(t, "GET", ts.URL+"/index", "", "")
	if code != http.StatusOK || !strings.Contains(body, hash) {
		t.Fatalf("GET /index: %d %s", code, body)
	}
	var list struct {
		Stats   catalogJSON `json:"stats"`
		Entries []struct {
			Hash string `json:"hash"`
		} `json:"entries"`
	}
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Entries) != 1 || list.Stats.Builds != 1 || !list.Stats.Enabled {
		t.Fatalf("GET /index list: %s", body)
	}

	code, _ = doReq(t, "GET", ts.URL+"/index/"+hash, "", "")
	if code != http.StatusOK {
		t.Fatalf("GET /index/{hash}: %d", code)
	}
	if code, _ = doReq(t, "GET", ts.URL+"/index/ffffffffffffffff", "", ""); code != http.StatusNotFound {
		t.Fatalf("GET missing hash: %d", code)
	}
	if code, _ = doReq(t, "GET", ts.URL+"/index/zzz", "", ""); code != http.StatusBadRequest {
		t.Fatalf("GET malformed hash: %d", code)
	}

	if code, _ = doReq(t, "DELETE", ts.URL+"/index/"+hash, "", ""); code != http.StatusNoContent {
		t.Fatalf("DELETE: %d", code)
	}
	if code, _ = doReq(t, "DELETE", ts.URL+"/index/"+hash, "", ""); code != http.StatusNotFound {
		t.Fatalf("double DELETE: %d", code)
	}
}

// TestIndexAPINDJSONCorpus persists an NDJSON body and checks the
// record table is stored with it.
func TestIndexAPINDJSONCorpus(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{Workers: 1, IndexDir: dir})
	corpus := "{\"v\":1}\n{\"v\":2}\n{\"v\":3}\n"
	code, body := doReq(t, "POST", ts.URL+"/index", "application/x-ndjson", corpus)
	if code != http.StatusCreated {
		t.Fatalf("POST corpus: %d %s", code, body)
	}
	var ent struct {
		Records int `json:"records"`
	}
	if err := json.Unmarshal([]byte(body), &ent); err != nil {
		t.Fatal(err)
	}
	if ent.Records != 3 {
		t.Fatalf("corpus records: %+v", ent)
	}
}

// TestCatalogWarmRestartServing is the acceptance check: a daemon
// restarted over the same -index-dir serves the first repeated-document
// query from the warmed catalog with zero index rebuilds, proven by the
// catalog hit counter and an untouched index cache.
func TestCatalogWarmRestartServing(t *testing.T) {
	dir := t.TempDir()

	// First daemon: persist the document's index, then go away.
	s1, err := New(Config{Workers: 1, IndexDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1)
	if code, body := doReq(t, "POST", ts1.URL+"/index", "application/json", catalogDoc); code != http.StatusCreated {
		t.Fatalf("POST /index: %d %s", code, body)
	}
	ts1.Close()
	s1.Close()

	// Second daemon over the same directory: warmed at startup.
	s2, err := New(Config{Workers: 1, IndexDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2)
	defer func() {
		ts2.Close()
		s2.Close()
	}()
	if st := s2.Catalog().Stats(); st.Opens != 1 || st.Entries != 1 || st.Builds != 0 {
		t.Fatalf("warm startup stats: %+v", st)
	}

	// The very first query for the document must be a catalog hit.
	code, body := doReq(t, "POST", ts2.URL+"/query?path=$.user.name", "application/json", catalogDoc)
	if code != http.StatusOK || strings.TrimSpace(body) != `{"record":0,"value":"ada"}` {
		t.Fatalf("warm query: %d %q", code, body)
	}
	st := s2.Catalog().Stats()
	if st.Hits != 1 || st.Misses != 0 || st.Builds != 0 {
		t.Fatalf("warm serving stats (want 1 hit, 0 rebuilds): %+v", st)
	}
	// The in-memory index cache was never consulted, so no mask build
	// happened anywhere in this process.
	if ics := s2.IndexCache().Stats(); ics.Hits != 0 || ics.Misses != 0 || ics.BytesIndexed != 0 {
		t.Fatalf("index cache touched on catalog hit: %+v", ics)
	}

	// /metrics carries the catalog section.
	code, body = doReq(t, "GET", ts2.URL+"/metrics", "", "")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	var snap struct {
		Catalog catalogJSON `json:"catalog"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if !snap.Catalog.Enabled || snap.Catalog.Hits != 1 || snap.Catalog.Entries != 1 {
		t.Fatalf("/metrics catalog section: %+v", snap.Catalog)
	}

	// /metrics/prom exposes the catalog counters.
	code, body = doReq(t, "GET", ts2.URL+"/metrics/prom", "", "")
	if code != http.StatusOK ||
		!strings.Contains(body, `jsonski_catalog_events_total{event="hit"} 1`) ||
		!strings.Contains(body, "jsonski_catalog_enabled 1") {
		t.Fatalf("/metrics/prom catalog exposition missing: %d\n%s", code, body)
	}
}

// TestCatalogMissFallsThrough: a document not in the catalog still
// evaluates (via the index cache tier) and counts a catalog miss.
func TestCatalogMissFallsThrough(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, IndexDir: t.TempDir()})
	code, body := doReq(t, "POST", ts.URL+"/query?path=$.user.id", "application/json", catalogDoc)
	if code != http.StatusOK || strings.TrimSpace(body) != `{"record":0,"value":7}` {
		t.Fatalf("miss query: %d %q", code, body)
	}
}
