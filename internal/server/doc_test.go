package server

import (
	"net/http"
	"net/url"
	"testing"
)

const docBody = `{"store": {"pad": [1, 2, 3], "book": [{"title": "A"}, {"title": "B"}]}}`

func TestDocLookup(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	code, body := post(t, ts.URL+"/doc?get="+url.QueryEscape("store.book[1].title"),
		"application/json", docBody)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if body != `"B"`+"\n" {
		t.Fatalf("body = %q", body)
	}
}

func TestDocLookupIndexed(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	// First lookup builds (and retains) the structural index; the second
	// must hit the cache and still navigate to the same span.
	for i := 0; i < 2; i++ {
		code, body := post(t, ts.URL+"/doc?get="+url.QueryEscape("store.book[0].title"),
			"application/json", docBody)
		if code != http.StatusOK {
			t.Fatalf("pass %d: status %d: %s", i, code, body)
		}
		if body != `"A"`+"\n" {
			t.Fatalf("pass %d: body = %q", i, body)
		}
	}
	if hits := s.icache.Stats().Hits; hits == 0 {
		t.Fatal("second /doc lookup should hit the index cache")
	}
}

func TestDocErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	for _, tc := range []struct {
		name, get, body string
		want            int
	}{
		{"missing get param", "", docBody, http.StatusBadRequest},
		{"malformed path", "store.book[", docBody, http.StatusBadRequest},
		{"empty body", "store", "", http.StatusBadRequest},
		{"malformed body", "store", `{"store": `, http.StatusBadRequest},
		{"path not found", "store.magazine", docBody, http.StatusNotFound},
		{"index out of range", "store.book[9].title", docBody, http.StatusNotFound},
	} {
		u := ts.URL + "/doc"
		if tc.get != "" {
			u += "?get=" + url.QueryEscape(tc.get)
		}
		code, body := post(t, u, "application/json", tc.body)
		if code != tc.want {
			t.Errorf("%s: status = %d, want %d (%s)", tc.name, code, tc.want, body)
		}
	}
}

func TestDocMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	if code, body := post(t, ts.URL+"/doc?get=store.pad%5B2%5D", "application/json", docBody); code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	snap := getMetrics(t, ts.URL)
	if snap.Requests.Doc != 1 {
		t.Fatalf("doc requests = %d, want 1", snap.Requests.Doc)
	}
	if snap.Latency.Doc.Count != 1 {
		t.Fatalf("doc latency count = %d, want 1", snap.Latency.Doc.Count)
	}
	if snap.Engine.Records != 1 {
		t.Fatalf("engine records = %d, want 1", snap.Engine.Records)
	}
	// the on-demand scan feeds the same accounting identity as a query
	var skipped int64
	for _, v := range snap.Engine.SkippedBytes {
		skipped += v
	}
	if got := snap.Engine.ScannedBytes + skipped; got != snap.Engine.InputBytes {
		t.Fatalf("accounting: scanned+skipped = %d, input %d", got, snap.Engine.InputBytes)
	}
}
