package server

import (
	"bufio"

	"jsonski"
	"jsonski/internal/fastforward"
	"jsonski/internal/telemetry"
)

// spanTraceEvents caps the fast-forward movements lifted onto one
// engine span of a sampled request. It is deliberately smaller than the
// explain-trailer caps: spans travel to a collector per request, while
// explain output is an opt-in debugging surface.
const spanTraceEvents = 64

// finishEngineSpan annotates one record evaluation's span with the
// paper's cost accounting — matches, input vs scanned bytes, and the
// per-group fast-forward charges of Table 1 — plus the movement log
// when the run recorded one, then ends the span. The span (possibly
// nil: unsampled request) is consumed; callers must not touch it after.
func (s *Server) finishEngineSpan(sp *telemetry.Span, idx int, st jsonski.Stats, err error) {
	// End unconditionally (a no-op on non-recording spans), so the span
	// reaches End() on the unsampled early-return path too — the same
	// contract spanend enforces at every StartChild site.
	defer sp.End()
	if !sp.Recording() {
		return
	}
	sp.SetInt("jsonski.record", int64(idx))
	sp.SetInt("jsonski.matches", st.Matches)
	sp.SetInt("jsonski.input.bytes", st.InputBytes)
	sp.SetInt("jsonski.scanned.bytes", st.ScannedBytes())
	for g, v := range st.SkippedBytes {
		sp.SetInt("jsonski.ff.bytes."+fastforward.Group(g).String(), v)
	}
	sp.SetFloat("jsonski.skip.ratio", st.FastForwardRatio())
	if tr := st.Trace(); tr != nil {
		// Movement events are lifted after the run (the hot loop only
		// appends to the bounded internal log), so event timestamps are
		// span-relative in ordering, not wall-accurate per movement.
		for _, e := range tr.Events {
			sp.AddEvent(e.Func,
				telemetry.String("group", e.Group),
				telemetry.Int("start", int64(e.Start)),
				telemetry.Int("bytes", int64(e.Bytes)))
		}
		if tr.Dropped > 0 {
			sp.SetInt("jsonski.trace.dropped_events", int64(tr.Dropped))
		}
	}
	sp.SetError(err)
}

// flushSink flushes the buffered response writer under a sink.flush
// child span, so a trace shows how much of a request's latency was the
// client draining output rather than the engine producing it.
func (s *Server) flushSink(rsp *telemetry.Span, bw *bufio.Writer) {
	sp := rsp.StartChild("sink.flush")
	defer sp.End()
	err := bw.Flush()
	sp.SetError(err)
}
