package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"mime"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"jsonski"
	"jsonski/internal/telemetry"
)

// Explain-mode event caps: a single record's trace is bounded at
// perRecordExplainEvents, and the whole response trailer at
// maxExplainEvents — adversarial inputs (one skip per byte) cost a
// bounded amount of memory per request no matter the body size.
const (
	perRecordExplainEvents = 512
	maxExplainEvents       = 4096
)

// recResult is one record's rendered output: the NDJSON lines for its
// matches, or the evaluation error. buf, when non-nil, is the pooled
// buffer backing out; release returns it once the bytes are written.
// trace is non-nil only in explain mode.
type recResult struct {
	idx   int
	out   []byte
	buf   *bytes.Buffer
	err   error
	trace *jsonski.Trace
}

// release returns the pooled line buffer after out has been consumed.
func (r *recResult) release() {
	if r.buf != nil {
		putLineBuf(r.buf)
		r.buf, r.out = nil, nil
	}
}

// linePool recycles the per-record output buffers of the NDJSON stream
// path; records flow through the sliding window continuously, so fresh
// buffers per record would dominate the handler's allocations.
var linePool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func getLineBuf() *bytes.Buffer {
	buf := linePool.Get().(*bytes.Buffer)
	buf.Reset()
	return buf
}

func putLineBuf(buf *bytes.Buffer) {
	// Oversized one-off buffers (a record with huge matches) are dropped
	// rather than pinned in the pool.
	if buf.Cap() <= 1<<20 {
		linePool.Put(buf)
	}
}

// NDJSON line framing for /query output: every match is wrapped as
// {"record":N,"value":<match>}. recordPrefix renders the opening frame
// for record idx; singlePrefix is the constant frame of single-document
// requests.
var (
	singlePrefix = recordPrefix(0)
	lineSuffix   = []byte("}\n")
)

func recordPrefix(idx int) []byte {
	b := make([]byte, 0, 24)
	b = append(b, `{"record":`...)
	b = strconv.AppendInt(b, int64(idx), 10)
	return append(b, `,"value":`...)
}

// evalFunc evaluates one record and renders its match lines. It runs on
// pool workers, concurrently with other records.
type evalFunc func(rec []byte, idx int) recResult

// evaluator bundles a record evaluation with its indexed twin. eval
// handles NDJSON stream records (each line is seen once; indexing it
// would be pure overhead); evalIndexed handles single-document
// requests through the structural-index cache, so repeated queries
// over a hot document reuse its word masks. single, when set, replaces
// both for non-explain single-document requests: it streams match
// lines straight from the record buffer into the response writer
// through a zero-copy StreamSink instead of rendering into an
// intermediate buffer (ix is nil when the index cache is off). In
// explain mode (explain set) eval records a fast-forward trace and the
// other paths are unused: explain runs bypass the index cache so the
// trace reflects exactly the movements of this evaluation.
type evaluator struct {
	eval        evalFunc
	evalIndexed func(ix *jsonski.Index, idx int) recResult
	single      func(w io.Writer, data []byte, ix *jsonski.Index) error
	explain     bool
}

// explainRequested reports whether the request opted into explain mode.
func explainRequested(r *http.Request) bool {
	switch r.URL.Query().Get("explain") {
	case "1", "true", "yes":
		return true
	}
	return false
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.m.queryRequests.Add(1)
	path := r.URL.Query().Get("path")
	if path == "" {
		s.jsonError(w, http.StatusBadRequest, errors.New("missing ?path= query parameter"))
		return
	}
	q, err := s.cache.Query(path)
	if err != nil {
		s.jsonError(w, http.StatusBadRequest, err)
		return
	}
	// The request's root span (nil unless tracing is on and the request
	// was sampled or force-collected); eval closures hang per-record
	// engine spans off it from pool workers, which StartChild permits.
	rsp := telemetry.SpanFromContext(r.Context())
	if explainRequested(r) {
		s.serve(w, r, evaluator{
			explain: true,
			eval: func(rec []byte, idx int) recResult {
				buf := getLineBuf()
				sp := rsp.StartChild("engine.run")
				t0 := time.Now()
				st, err := q.RunExplain(rec, perRecordExplainEvents, queryLine(buf, idx))
				s.m.recordLatency.Observe(time.Since(t0))
				s.m.addStats(st)
				s.finishEngineSpan(sp, idx, st, err)
				return recResult{idx: idx, out: buf.Bytes(), buf: buf, err: err, trace: st.Trace()}
			},
		})
		return
	}
	s.serve(w, r, evaluator{
		eval: func(rec []byte, idx int) recResult {
			buf := getLineBuf()
			sink := &jsonski.StreamSink{W: buf, Prefix: recordPrefix(idx), Suffix: lineSuffix}
			sp := rsp.StartChild("engine.run")
			t0 := time.Now()
			var (
				st  jsonski.Stats
				err error
			)
			if sp.Recording() {
				// Sampled: the explain-sink run records the movement log
				// that becomes the span's events. Same engine, same output.
				st, err = q.RunSinkExplain(rec, sink, spanTraceEvents)
			} else {
				st, err = q.RunSink(rec, sink)
			}
			s.m.recordLatency.Observe(time.Since(t0))
			s.m.addStats(st)
			s.finishEngineSpan(sp, idx, st, err)
			return recResult{idx: idx, out: buf.Bytes(), buf: buf, err: err}
		},
		single: func(w io.Writer, data []byte, ix *jsonski.Index) error {
			sink := &jsonski.StreamSink{W: w, Prefix: singlePrefix, Suffix: lineSuffix}
			sp := rsp.StartChild("engine.run")
			sp.SetBool("jsonski.indexed", ix != nil)
			t0 := time.Now()
			var (
				st  jsonski.Stats
				err error
			)
			switch {
			case ix != nil && sp.Recording():
				st, err = q.RunIndexedSinkExplain(ix, sink, spanTraceEvents)
			case ix != nil:
				st, err = q.RunIndexedSink(ix, sink)
			case sp.Recording():
				st, err = q.RunSinkExplain(data, sink, spanTraceEvents)
			default:
				st, err = q.RunSink(data, sink)
			}
			s.m.recordLatency.Observe(time.Since(t0))
			s.m.addStats(st)
			s.finishEngineSpan(sp, 0, st, err)
			return err
		},
	})
}

// queryLine renders each /query match as an NDJSON line into buf.
func queryLine(buf *bytes.Buffer, idx int) func(jsonski.Match) {
	return func(m jsonski.Match) {
		buf.WriteString(`{"record":`)
		buf.WriteString(strconv.Itoa(idx))
		buf.WriteString(`,"value":`)
		buf.Write(m.Value)
		buf.WriteString("}\n")
	}
}

func (s *Server) handleMulti(w http.ResponseWriter, r *http.Request) {
	s.m.multiRequests.Add(1)
	paths := r.URL.Query()["path"]
	if len(paths) == 0 {
		s.jsonError(w, http.StatusBadRequest, errors.New("missing ?path= query parameters"))
		return
	}
	if explainRequested(r) {
		// The shared-pass MultiEngine interleaves all queries' movements;
		// per-query attribution would be misleading, so explain is a
		// /query-only feature.
		s.jsonError(w, http.StatusBadRequest, errors.New("explain is not supported on /multi; use /query"))
		return
	}
	qs, err := s.cache.QuerySet(paths...)
	if err != nil {
		s.jsonError(w, http.StatusBadRequest, err)
		return
	}
	rsp := telemetry.SpanFromContext(r.Context())
	s.serve(w, r, evaluator{
		eval: func(rec []byte, idx int) recResult {
			buf := getLineBuf()
			sp := rsp.StartChild("engine.run")
			t0 := time.Now()
			st, err := qs.Run(rec, multiLine(buf, idx))
			s.m.recordLatency.Observe(time.Since(t0))
			s.m.addStats(st)
			s.finishEngineSpan(sp, idx, st, err)
			return recResult{idx: idx, out: buf.Bytes(), buf: buf, err: err}
		},
		evalIndexed: func(ix *jsonski.Index, idx int) recResult {
			buf := getLineBuf()
			sp := rsp.StartChild("engine.run")
			sp.SetBool("jsonski.indexed", true)
			t0 := time.Now()
			st, err := qs.RunIndexed(ix, multiLine(buf, idx))
			s.m.recordLatency.Observe(time.Since(t0))
			s.m.addStats(st)
			s.finishEngineSpan(sp, idx, st, err)
			return recResult{idx: idx, out: buf.Bytes(), buf: buf, err: err}
		},
	})
}

// multiLine renders each /multi match as an NDJSON line into buf.
func multiLine(buf *bytes.Buffer, idx int) func(jsonski.SetMatch) {
	return func(m jsonski.SetMatch) {
		buf.WriteString(`{"record":`)
		buf.WriteString(strconv.Itoa(idx))
		buf.WriteString(`,"query":`)
		buf.WriteString(strconv.Itoa(m.Query))
		buf.WriteString(`,"value":`)
		buf.Write(m.Value)
		buf.WriteString("}\n")
	}
}

// serve wires a request body into the evaluator: a single JSON record
// when the Content-Type says application/json, an NDJSON record stream
// otherwise.
func (s *Server) serve(w http.ResponseWriter, r *http.Request, ev evaluator) {
	s.m.inFlight.Add(1)
	defer s.m.inFlight.Add(-1)
	var body io.Reader = r.Body
	if s.cfg.MaxBodyBytes > 0 {
		body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	}
	body = &countingReader{r: body, n: &s.m.bytesIn}

	if ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type")); ct == "application/json" {
		s.serveSingle(w, r, body, ev)
		return
	}
	s.streamRecords(w, r, body, ev)
}

// explainEvent is one trailer event: a public trace event tagged with
// the record it came from.
type explainEvent struct {
	Record int `json:"record"`
	jsonski.TraceEvent
}

// explainTrail accumulates the bounded explain trailer of a response.
type explainTrail struct {
	events  []explainEvent
	dropped int
}

// add folds one record's trace in, enforcing the global event cap.
func (t *explainTrail) add(idx int, tr *jsonski.Trace) {
	if tr == nil {
		return
	}
	t.dropped += tr.Dropped
	for _, e := range tr.Events {
		if len(t.events) >= maxExplainEvents {
			t.dropped++
			continue
		}
		t.events = append(t.events, explainEvent{Record: idx, TraceEvent: e})
	}
}

// line renders the trailer as one NDJSON line. Truncation is never
// silent: dropped_events carries the count of movements that fell past
// the per-record and whole-response caps ("dropped" is the same value
// under the trailer's original field name, kept for existing parsers).
func (t *explainTrail) line() []byte {
	var out struct {
		Explain struct {
			Events        []explainEvent `json:"events"`
			Dropped       int            `json:"dropped"`
			DroppedEvents int            `json:"dropped_events"`
		} `json:"explain"`
	}
	out.Explain.Events = t.events
	if out.Explain.Events == nil {
		out.Explain.Events = []explainEvent{}
	}
	out.Explain.Dropped = t.dropped
	out.Explain.DroppedEvents = t.dropped
	b, _ := json.Marshal(out)
	return append(b, '\n')
}

// serveSingle evaluates the whole body as one record. With the index
// cache enabled it runs through a cached structural index: the body
// buffer is fresh per request (ReadAll), so the cache can safely retain
// it, and repeated posts of the same document hit the cached masks.
func (s *Server) serveSingle(w http.ResponseWriter, r *http.Request, body io.Reader, ev evaluator) {
	data, err := io.ReadAll(body)
	if err != nil {
		s.requestError(w, err)
		return
	}
	data = bytes.TrimSpace(data)
	if len(data) == 0 {
		s.jsonError(w, http.StatusBadRequest, errors.New("empty body"))
		return
	}
	if ev.single != nil && !ev.explain {
		s.serveSingleStreaming(w, r, data, ev)
		return
	}
	var res recResult
	if !ev.explain && ev.evalIndexed != nil {
		if ix := s.lookupIndex(telemetry.SpanFromContext(r.Context()), data); ix != nil {
			res = ev.evalIndexed(ix, 0)
			ix.Release()
		} else {
			res = ev.eval(data, 0)
		}
	} else {
		// Explain runs bypass the index tiers: the trace should describe
		// this evaluation's movements, not a cached index's.
		res = ev.eval(data, 0)
	}
	if res.err != nil {
		s.m.recordErrors.Add(1)
		res.release()
		s.jsonError(w, http.StatusBadRequest, res.err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	s.write(w, res.out)
	res.release()
	if ev.explain {
		var trail explainTrail
		trail.add(0, res.trace)
		s.write(w, trail.line())
	}
}

// lookupIndex resolves a single-document request body to a structural
// index through the two tiers: the persistent catalog first (a hit is a
// mapped sidecar — masks shared page-cache-wide, zero rebuild even
// across daemon restarts), then the in-memory index cache (which builds
// and retains on miss). Returns nil when both tiers are disabled; the
// caller owns one reference otherwise. On traced requests the lookup is
// timed as an index.lookup child span tagged with the tier that served
// it, so a trace distinguishes mask reuse from a rebuild.
func (s *Server) lookupIndex(rsp *telemetry.Span, data []byte) *jsonski.Index {
	sp := rsp.StartChild("index.lookup")
	defer sp.End()
	sp.SetInt("jsonski.document.bytes", int64(len(data)))
	if s.catalog != nil {
		if ix, _ := s.catalog.Get(data); ix != nil {
			sp.SetString("jsonski.index.tier", "catalog")
			return ix
		}
	}
	if s.icache != nil {
		ix := s.icache.Get(data)
		if ix != nil {
			sp.SetString("jsonski.index.tier", "cache")
		}
		return ix
	}
	sp.SetString("jsonski.index.tier", "none")
	return nil
}

// responseBufPool recycles the output buffers of the streaming
// single-document path.
var responseBufPool = sync.Pool{
	New: func() any { return bufio.NewWriterSize(nil, 16<<10) },
}

// hideFlush exposes only Write, so the StreamSink's end-of-run Flush
// cannot push buffered output to the wire before serveSingleStreaming
// has decided between success and a full-status error.
type hideFlush struct{ io.Writer }

// countingWriter tallies bytes that actually reach the response.
type countingWriter struct {
	w io.Writer
	n *atomic.Int64
	// sent is the bytes forwarded on this response; once nonzero the
	// status line is committed and errors must become NDJSON lines.
	sent int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.sent += int64(n)
	c.n.Add(int64(n))
	return n, err
}

// serveSingleStreaming evaluates the whole body as one record with
// match lines streamed straight from the record buffer to the response
// (no intermediate rendering of the result set). Output is buffered
// 16KB at a time: an evaluation error before anything reached the wire
// still gets a full-status 400 with the partial output discarded;
// after that the error becomes a trailing NDJSON line, as on the
// record-stream path.
func (s *Server) serveSingleStreaming(w http.ResponseWriter, r *http.Request, data []byte, ev evaluator) {
	rsp := telemetry.SpanFromContext(r.Context())
	ix := s.lookupIndex(rsp, data)
	if ix != nil {
		defer ix.Release()
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	cw := &countingWriter{w: w, n: &s.m.bytesOut}
	bw := responseBufPool.Get().(*bufio.Writer)
	bw.Reset(cw)
	defer func() {
		bw.Reset(nil)
		responseBufPool.Put(bw)
	}()
	if err := ev.single(hideFlush{bw}, data, ix); err != nil {
		s.m.recordErrors.Add(1)
		if cw.sent == 0 {
			s.jsonError(w, http.StatusBadRequest, err)
			return
		}
		s.flushSink(rsp, bw)
		s.writeErrorLine(w, 0, err)
		return
	}
	s.flushSink(rsp, bw)
}

// streamRecords pipelines an NDJSON body through the worker pool with a
// sliding window of in-flight records: up to `depth` records are being
// evaluated while earlier results are written back in input order and
// flushed one record at a time, so the client sees matches for record n
// while record n+k is still parsing — including clients that trickle
// records in over a held-open connection. The window, together with the
// pool's bounded queue, is the request's backpressure: reading from the
// body pauses whenever the window is full.
//
// NDJSON records are independent, so a malformed record does not abort
// the stream: it becomes a {"record":n,"error":...} line (counted in
// /metrics) and evaluation continues with the next record.
func (s *Server) streamRecords(w http.ResponseWriter, r *http.Request, body io.Reader, ev evaluator) {
	eval := ev.eval
	ctx := r.Context()
	w.Header().Set("Content-Type", "application/x-ndjson")
	rc := http.NewResponseController(w)
	// HTTP/1 servers assume a handler stops reading the body once it
	// writes the response; we interleave the two by design (matches for
	// record n stream back while record n+k is still uploading), which
	// needs full-duplex mode. HTTP/2 is always full duplex; ignore the
	// not-supported error there.
	_ = rc.EnableFullDuplex()
	depth := 2 * s.cfg.Workers

	// The body is read by its own goroutine so the handler can hand a
	// finished result to the client while the next record is still in
	// flight on the wire. The goroutine owns r.Body until it sees EOF,
	// a read error, or ctx done — the handler joins on readDone before
	// returning, so the body is never touched after ServeHTTP exits.
	lines := make(chan []byte)
	readDone := make(chan error, 1)
	go func() {
		defer close(lines)
		br := bufio.NewReaderSize(body, 64<<10)
		for {
			line, err := readLine(br)
			if len(line) > 0 {
				select {
				case lines <- line:
				case <-ctx.Done():
					readDone <- ctx.Err()
					return
				}
			}
			if err == io.EOF {
				readDone <- nil
				return
			}
			if err != nil {
				readDone <- err
				return
			}
		}
	}()

	window := make([]chan recResult, 0, depth)
	idx := 0
	wroteAny := false
	linesOpen := true

	var trail explainTrail
	flush := func() { _ = rc.Flush() }
	writeResult := func(res recResult) {
		if ev.explain {
			trail.add(res.idx, res.trace)
		}
		if res.err != nil {
			s.m.recordErrors.Add(1)
			res.release()
			s.writeErrorLine(w, res.idx, res.err)
			wroteAny = true
			flush()
			return
		}
		if len(res.out) > 0 {
			s.write(w, res.out)
			wroteAny = true
			flush()
		}
		res.release()
	}

loop:
	for linesOpen || len(window) > 0 {
		var ready chan recResult
		if len(window) > 0 {
			ready = window[0]
		}
		var lineCh chan []byte
		if linesOpen && len(window) < depth {
			lineCh = lines
		}
		select {
		case line, ok := <-lineCh:
			if !ok {
				linesOpen = false
				continue
			}
			// bufio.ReadBytes hands each line out in a fresh slice, so
			// records can cross into worker goroutines as-is.
			rec, i := line, idx
			idx++
			ch := make(chan recResult, 1)
			if err := s.pool.submit(ctx, func() { ch <- eval(rec, i) }); err != nil {
				break loop
			}
			window = append(window, ch)
		case res := <-ready:
			window = window[1:]
			writeResult(res)
		case <-ctx.Done():
			break loop
		}
	}
	// On an early break the reader may be blocked handing us a line;
	// keep receiving (and discarding) so it can run to EOF or error.
	for linesOpen {
		if _, ok := <-lines; !ok {
			linesOpen = false
		}
	}
	// Drain results still in flight (every submitted task sends exactly
	// once into its buffered channel), then join the reader.
	for _, ch := range window {
		if ctx.Err() == nil {
			writeResult(<-ch)
		} else {
			res := <-ch
			res.release()
		}
	}
	if err := <-readDone; err != nil {
		if ctx.Err() != nil {
			s.m.cancelledReads.Add(1)
			return
		}
		s.requestErrorMidStream(w, wroteAny, err)
		return
	}
	if ev.explain && ctx.Err() == nil {
		// The explain trailer is the stream's last line, present even
		// when no record produced a match.
		s.write(w, trail.line())
		flush()
		return
	}
	if !wroteAny {
		// No record produced a match: still a success, still NDJSON —
		// just an empty stream.
		w.WriteHeader(http.StatusOK)
	}
}

// requestError maps a body-read failure to a status code before any
// output has been written.
func (s *Server) requestError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		status = http.StatusRequestEntityTooLarge
	}
	s.jsonError(w, status, err)
}

// requestErrorMidStream reports a body-read failure that may arrive
// after match lines have already been streamed; in that case the status
// line is long gone and the error becomes a trailing NDJSON line.
func (s *Server) requestErrorMidStream(w http.ResponseWriter, wroteAny bool, err error) {
	if !wroteAny {
		s.requestError(w, err)
		return
	}
	s.writeErrorLine(w, -1, err)
	if fl, ok := w.(http.Flusher); ok {
		fl.Flush()
	}
}

// jsonError sends a {"error": ...} response with the given status.
func (s *Server) jsonError(w http.ResponseWriter, status int, err error) {
	s.m.requestErrors.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(status)
	b, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{err.Error()})
	s.write(w, append(b, '\n'))
}

// writeErrorLine appends an NDJSON error line to an already-started
// stream. record is -1 when the error is not tied to one record.
func (s *Server) writeErrorLine(w http.ResponseWriter, record int, err error) {
	s.m.requestErrors.Add(1)
	var line struct {
		Record *int   `json:"record,omitempty"`
		Error  string `json:"error"`
	}
	if record >= 0 {
		line.Record = &record
	}
	line.Error = err.Error()
	b, _ := json.Marshal(line)
	s.write(w, append(b, '\n'))
}

// readLine reads one newline-terminated record, trimming whitespace.
// Lines longer than the reader's buffer are handled by ReadBytes.
func readLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadBytes('\n')
	return bytes.TrimSpace(line), err
}
