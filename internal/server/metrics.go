package server

import (
	"encoding/json"
	"net/http"
	"sync/atomic"

	"jsonski"
	"jsonski/internal/fastforward"
)

// metrics holds the server's live counters, expvar-style: individually
// atomic monotonic counters (plus one in-flight gauge), readable at any
// time without locks. Engine counters are fed from jsonski.Stats as each
// record finishes, so /metrics reflects requests still in progress.
type metrics struct {
	queryRequests  atomic.Int64
	multiRequests  atomic.Int64
	requestErrors  atomic.Int64
	inFlight       atomic.Int64
	bytesIn        atomic.Int64
	bytesOut       atomic.Int64
	records        atomic.Int64
	matches        atomic.Int64
	engineInBytes  atomic.Int64
	skipped        [fastforward.NumGroups]atomic.Int64
	recordErrors   atomic.Int64
	cancelledReads atomic.Int64
}

// addStats folds one record evaluation into the engine counters.
func (m *metrics) addStats(st jsonski.Stats) {
	m.records.Add(1)
	m.matches.Add(st.Matches)
	m.engineInBytes.Add(st.InputBytes)
	for g, v := range st.SkippedBytes {
		if v != 0 {
			m.skipped[g].Add(v)
		}
	}
}

// metricsSnapshot is the JSON document served at GET /metrics.
type metricsSnapshot struct {
	Requests struct {
		Query    int64 `json:"query"`
		Multi    int64 `json:"multi"`
		Errors   int64 `json:"errors"`
		InFlight int64 `json:"in_flight"`
	} `json:"requests"`
	IO struct {
		BytesIn  int64 `json:"bytes_in"`
		BytesOut int64 `json:"bytes_out"`
	} `json:"io"`
	Engine struct {
		Records          int64     `json:"records"`
		RecordErrors     int64     `json:"record_errors"`
		Matches          int64     `json:"matches"`
		InputBytes       int64     `json:"input_bytes"`
		SkippedBytes     [5]int64  `json:"skipped_bytes"`
		FastForwardRatio float64   `json:"fast_forward_ratio"`
		GroupRatios      []float64 `json:"group_ratios"`
	} `json:"engine"`
	Cache struct {
		Hits      int64   `json:"hits"`
		Misses    int64   `json:"misses"`
		Evictions int64   `json:"evictions"`
		Size      int     `json:"size"`
		Cap       int     `json:"cap"`
		HitRate   float64 `json:"hit_rate"`
	} `json:"cache"`
	IndexCache struct {
		Enabled      bool    `json:"enabled"`
		Hits         int64   `json:"hits"`
		Misses       int64   `json:"misses"`
		Evictions    int64   `json:"evictions"`
		Entries      int     `json:"entries"`
		Bytes        int64   `json:"bytes"`
		CapBytes     int64   `json:"cap_bytes"`
		BytesIndexed int64   `json:"bytes_indexed"`
		HitRate      float64 `json:"hit_rate"`
	} `json:"index_cache"`
	Workers struct {
		Count         int `json:"count"`
		QueueDepth    int `json:"queue_depth"`
		QueueCapacity int `json:"queue_capacity"`
	} `json:"workers"`
}

func (s *Server) snapshot() metricsSnapshot {
	var out metricsSnapshot
	out.Requests.Query = s.m.queryRequests.Load()
	out.Requests.Multi = s.m.multiRequests.Load()
	out.Requests.Errors = s.m.requestErrors.Load()
	out.Requests.InFlight = s.m.inFlight.Load()
	out.IO.BytesIn = s.m.bytesIn.Load()
	out.IO.BytesOut = s.m.bytesOut.Load()

	var st jsonski.Stats
	st.Matches = s.m.matches.Load()
	st.InputBytes = s.m.engineInBytes.Load()
	for g := range s.m.skipped {
		st.SkippedBytes[g] = s.m.skipped[g].Load()
	}
	out.Engine.Records = s.m.records.Load()
	out.Engine.RecordErrors = s.m.recordErrors.Load()
	out.Engine.Matches = st.Matches
	out.Engine.InputBytes = st.InputBytes
	out.Engine.SkippedBytes = st.SkippedBytes
	out.Engine.FastForwardRatio = st.FastForwardRatio()
	out.Engine.GroupRatios = make([]float64, len(st.SkippedBytes))
	for g := range st.SkippedBytes {
		out.Engine.GroupRatios[g] = st.GroupRatio(g)
	}

	cs := s.cache.Stats()
	out.Cache.Hits = cs.Hits
	out.Cache.Misses = cs.Misses
	out.Cache.Evictions = cs.Evictions
	out.Cache.Size = cs.Size
	out.Cache.Cap = cs.Cap
	out.Cache.HitRate = cs.HitRate()

	if s.icache != nil {
		ics := s.icache.Stats()
		out.IndexCache.Enabled = true
		out.IndexCache.Hits = ics.Hits
		out.IndexCache.Misses = ics.Misses
		out.IndexCache.Evictions = ics.Evictions
		out.IndexCache.Entries = ics.Entries
		out.IndexCache.Bytes = ics.Bytes
		out.IndexCache.CapBytes = ics.CapBytes
		out.IndexCache.BytesIndexed = ics.BytesIndexed
		out.IndexCache.HitRate = ics.HitRate()
	}

	out.Workers.Count = s.pool.workers()
	out.Workers.QueueDepth = s.pool.queueDepth()
	out.Workers.QueueCapacity = s.pool.queueCap()
	return out
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	b, err := json.MarshalIndent(s.snapshot(), "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.write(w, append(b, '\n'))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.write(w, []byte("ok\n"))
}
