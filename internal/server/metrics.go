package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"jsonski"
	"jsonski/internal/fastforward"
	"jsonski/internal/telemetry"
)

// metrics holds the server's live counters, expvar-style: individually
// atomic monotonic counters (plus one in-flight gauge) and lock-free
// latency histograms, readable at any time without locks. Engine
// counters are fed from jsonski.Stats as each record finishes, so
// /metrics reflects requests still in progress.
type metrics struct {
	queryRequests  atomic.Int64
	multiRequests  atomic.Int64
	requestErrors  atomic.Int64
	inFlight       atomic.Int64
	bytesIn        atomic.Int64
	bytesOut       atomic.Int64
	records        atomic.Int64
	matches        atomic.Int64
	engineInBytes  atomic.Int64
	scannedBytes   atomic.Int64
	skipped        [fastforward.NumGroups]atomic.Int64
	recordErrors   atomic.Int64
	cancelledReads atomic.Int64
	docRequests    atomic.Int64

	// queryLatency, multiLatency, and docLatency time whole requests per
	// endpoint (observed in ServeHTTP); recordLatency times individual
	// record evaluations across the endpoints (observed in the eval
	// closures and the /doc lookup).
	queryLatency  telemetry.Histogram
	multiLatency  telemetry.Histogram
	recordLatency telemetry.Histogram
	docLatency    telemetry.Histogram
}

// addStats folds one record evaluation into the engine counters. Write
// order matters for snapshot consistency: input and scanned bytes are
// published before the skipped-byte groups, so a snapshot that reads
// the groups first (see snapshot) can pair each group with denominator
// totals at least as new — derived skip ratios can undershoot briefly
// but never exceed reality.
func (m *metrics) addStats(st jsonski.Stats) {
	m.records.Add(1)
	m.matches.Add(st.Matches)
	m.engineInBytes.Add(st.InputBytes)
	m.scannedBytes.Add(st.ScannedBytes())
	for g, v := range st.SkippedBytes {
		if v != 0 {
			m.skipped[g].Add(v)
		}
	}
}

// latencyJSON is one histogram rendered for the JSON snapshot.
type latencyJSON struct {
	Count  int64 `json:"count"`
	SumNs  int64 `json:"sum_ns"`
	MaxNs  int64 `json:"max_ns"`
	MeanNs int64 `json:"mean_ns"`
	P50Ns  int64 `json:"p50_ns"`
	P90Ns  int64 `json:"p90_ns"`
	P99Ns  int64 `json:"p99_ns"`
}

func latencyFrom(s telemetry.HistSnapshot) latencyJSON {
	return latencyJSON{
		Count:  s.Count,
		SumNs:  s.SumNanos,
		MaxNs:  s.MaxNanos,
		MeanNs: int64(s.Mean()),
		P50Ns:  int64(s.Quantile(0.50)),
		P90Ns:  int64(s.Quantile(0.90)),
		P99Ns:  int64(s.Quantile(0.99)),
	}
}

// metricsSnapshot is the JSON document served at GET /metrics. New
// sections are appended at the end so the established field order stays
// byte-compatible for existing consumers.
type metricsSnapshot struct {
	Requests struct {
		Query    int64 `json:"query"`
		Multi    int64 `json:"multi"`
		Errors   int64 `json:"errors"`
		InFlight int64 `json:"in_flight"`
		// Doc sits last so the established field order stays
		// byte-compatible for existing consumers.
		Doc int64 `json:"doc"`
	} `json:"requests"`
	IO struct {
		BytesIn  int64 `json:"bytes_in"`
		BytesOut int64 `json:"bytes_out"`
		// CancelledReads sits last so the established field order stays
		// byte-compatible for existing consumers.
		CancelledReads int64 `json:"cancelled_reads"`
	} `json:"io"`
	Engine struct {
		Records          int64     `json:"records"`
		RecordErrors     int64     `json:"record_errors"`
		Matches          int64     `json:"matches"`
		InputBytes       int64     `json:"input_bytes"`
		SkippedBytes     [5]int64  `json:"skipped_bytes"`
		FastForwardRatio float64   `json:"fast_forward_ratio"`
		GroupRatios      []float64 `json:"group_ratios"`
		// ScannedBytes and SkipRatio sit last in this section per the
		// append-only field-order rule. ScannedBytes is the complement of
		// the skipped groups (bytes the engines actually examined);
		// SkipRatio = skipped / (skipped + scanned), the paper's Table 6
		// accounting over the two directly-published counters.
		ScannedBytes int64   `json:"scanned_bytes"`
		SkipRatio    float64 `json:"skip_ratio"`
	} `json:"engine"`
	Cache struct {
		Hits      int64   `json:"hits"`
		Misses    int64   `json:"misses"`
		Evictions int64   `json:"evictions"`
		Size      int     `json:"size"`
		Cap       int     `json:"cap"`
		HitRate   float64 `json:"hit_rate"`
	} `json:"cache"`
	IndexCache struct {
		Enabled      bool    `json:"enabled"`
		Hits         int64   `json:"hits"`
		Misses       int64   `json:"misses"`
		Evictions    int64   `json:"evictions"`
		Entries      int     `json:"entries"`
		Bytes        int64   `json:"bytes"`
		CapBytes     int64   `json:"cap_bytes"`
		BytesIndexed int64   `json:"bytes_indexed"`
		HitRate      float64 `json:"hit_rate"`
	} `json:"index_cache"`
	Workers struct {
		Count         int `json:"count"`
		QueueDepth    int `json:"queue_depth"`
		QueueCapacity int `json:"queue_capacity"`
	} `json:"workers"`
	Latency struct {
		Query  latencyJSON `json:"query"`
		Multi  latencyJSON `json:"multi"`
		Record latencyJSON `json:"record"`
		// Doc sits last per the append-only field-order rule.
		Doc latencyJSON `json:"doc"`
	} `json:"latency"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Build         struct {
		GoVersion string `json:"go_version"`
		Revision  string `json:"revision,omitempty"`
		Modified  bool   `json:"modified,omitempty"`
		// Version sits last in this section per the append-only rule: the
		// human-readable one-liner the -version flags print, so a metrics
		// scrape identifies the running build without shell access.
		Version string `json:"version"`
	} `json:"build"`
	// Catalog reports the persistent index catalog (-index-dir).
	Catalog catalogJSON `json:"catalog"`
	// Trace reports the distributed-tracing pipeline (-trace-endpoint /
	// -trace-file): span volume by sampling outcome and exporter health.
	// Counters come from the tracer's own atomics via Tracer.Stats, not
	// the server metrics struct. It sits last per this struct's
	// append-only field-order rule.
	Trace struct {
		Enabled       bool  `json:"enabled"`
		SpansStarted  int64 `json:"spans_started"`
		SpansSampled  int64 `json:"spans_sampled"`
		SpansForced   int64 `json:"spans_forced"`
		SpansDropped  int64 `json:"spans_dropped"`
		SpansExported int64 `json:"spans_exported"`
		ExportBatches int64 `json:"export_batches"`
		ExportErrors  int64 `json:"export_errors"`
	} `json:"trace"`
}

// catalogJSON is the catalog section of the metrics snapshot and of
// GET /index.
type catalogJSON struct {
	Enabled     bool    `json:"enabled"`
	Hits        int64   `json:"hits"`
	Misses      int64   `json:"misses"`
	Opens       int64   `json:"opens"`
	Builds      int64   `json:"builds"`
	Evictions   int64   `json:"evictions"`
	Invalidated int64   `json:"invalidated"`
	Entries     int     `json:"entries"`
	Bytes       int64   `json:"bytes"`
	CapBytes    int64   `json:"cap_bytes"`
	Mmap        bool    `json:"mmap"`
	HitRate     float64 `json:"hit_rate"`
}

func catalogFrom(st jsonski.CatalogStats, enabled bool) catalogJSON {
	out := catalogJSON{
		Enabled:     enabled,
		Hits:        st.Hits,
		Misses:      st.Misses,
		Opens:       st.Opens,
		Builds:      st.Builds,
		Evictions:   st.Evictions,
		Invalidated: st.Invalidated,
		Entries:     st.Entries,
		Bytes:       st.Bytes,
		CapBytes:    st.CapBytes,
		Mmap:        st.Mapped,
	}
	if total := st.Hits + st.Misses; total > 0 {
		out.HitRate = float64(st.Hits) / float64(total)
	}
	return out
}

// promSnapshot bundles everything the exposition surfaces derive their
// samples from: the shared JSON snapshot plus the raw histogram
// snapshots it was rendered from. Both metrics handlers read the live
// atomics exactly once, through this struct, so the two surfaces can
// never disagree with themselves within one scrape.
type promSnapshot struct {
	metricsSnapshot
	queryLatency  telemetry.HistSnapshot
	multiLatency  telemetry.HistSnapshot
	recordLatency telemetry.HistSnapshot
	docLatency    telemetry.HistSnapshot
}

// snapshot is the single reader of the live metric atomics. Load order
// pairs with addStats's write order: the per-group skipped counters are
// read before matches, records, and (last) the engine input-byte total,
// so every derived ratio divides a possibly-stale numerator by an
// at-least-as-fresh denominator — a scrape racing a record can read a
// ratio that is momentarily low, never one above the true value.
func (s *Server) snapshot() promSnapshot {
	var out promSnapshot
	for g := range s.m.skipped {
		out.Engine.SkippedBytes[g] = s.m.skipped[g].Load()
	}
	// scannedBytes is read after the groups (it is written before them),
	// so the derived skip ratio's denominator is at least as fresh as its
	// numerator.
	out.Engine.ScannedBytes = s.m.scannedBytes.Load()
	out.Engine.RecordErrors = s.m.recordErrors.Load()
	out.Engine.Matches = s.m.matches.Load()
	out.Engine.Records = s.m.records.Load()
	out.Engine.InputBytes = s.m.engineInBytes.Load()

	var st jsonski.Stats
	st.Matches = out.Engine.Matches
	st.InputBytes = out.Engine.InputBytes
	st.SkippedBytes = out.Engine.SkippedBytes
	out.Engine.FastForwardRatio = st.FastForwardRatio()
	out.Engine.GroupRatios = make([]float64, len(st.SkippedBytes))
	var ffTotal int64
	for g := range st.SkippedBytes {
		out.Engine.GroupRatios[g] = st.GroupRatio(g)
		ffTotal += st.SkippedBytes[g]
	}
	if total := ffTotal + out.Engine.ScannedBytes; total > 0 {
		out.Engine.SkipRatio = float64(ffTotal) / float64(total)
	}

	out.Requests.Query = s.m.queryRequests.Load()
	out.Requests.Multi = s.m.multiRequests.Load()
	out.Requests.Doc = s.m.docRequests.Load()
	out.Requests.Errors = s.m.requestErrors.Load()
	out.Requests.InFlight = s.m.inFlight.Load()
	out.IO.BytesIn = s.m.bytesIn.Load()
	out.IO.BytesOut = s.m.bytesOut.Load()
	out.IO.CancelledReads = s.m.cancelledReads.Load()

	cs := s.cache.Stats()
	out.Cache.Hits = cs.Hits
	out.Cache.Misses = cs.Misses
	out.Cache.Evictions = cs.Evictions
	out.Cache.Size = cs.Size
	out.Cache.Cap = cs.Cap
	out.Cache.HitRate = cs.HitRate()

	if s.icache != nil {
		ics := s.icache.Stats()
		out.IndexCache.Enabled = true
		out.IndexCache.Hits = ics.Hits
		out.IndexCache.Misses = ics.Misses
		out.IndexCache.Evictions = ics.Evictions
		out.IndexCache.Entries = ics.Entries
		out.IndexCache.Bytes = ics.Bytes
		out.IndexCache.CapBytes = ics.CapBytes
		out.IndexCache.BytesIndexed = ics.BytesIndexed
		out.IndexCache.HitRate = ics.HitRate()
	}

	out.Workers.Count = s.pool.workers()
	out.Workers.QueueDepth = s.pool.queueDepth()
	out.Workers.QueueCapacity = s.pool.queueCap()

	out.queryLatency = s.m.queryLatency.Snapshot()
	out.multiLatency = s.m.multiLatency.Snapshot()
	out.recordLatency = s.m.recordLatency.Snapshot()
	out.docLatency = s.m.docLatency.Snapshot()
	out.Latency.Query = latencyFrom(out.queryLatency)
	out.Latency.Multi = latencyFrom(out.multiLatency)
	out.Latency.Record = latencyFrom(out.recordLatency)
	out.Latency.Doc = latencyFrom(out.docLatency)

	if s.catalog != nil {
		out.Catalog = catalogFrom(s.catalog.Stats(), true)
	}

	out.UptimeSeconds = time.Since(s.start).Seconds()
	b := telemetry.BuildInfo()
	out.Build.GoVersion = b.GoVersion
	out.Build.Revision = b.Revision
	out.Build.Modified = b.Modified
	out.Build.Version = b.Version()

	if s.tracer != nil {
		ts := s.tracer.Stats()
		out.Trace.Enabled = true
		out.Trace.SpansStarted = ts.Started
		out.Trace.SpansSampled = ts.Sampled
		out.Trace.SpansForced = ts.Forced
		out.Trace.SpansDropped = ts.DroppedSpans
		out.Trace.SpansExported = ts.ExportedSpans
		out.Trace.ExportBatches = ts.ExportBatches
		out.Trace.ExportErrors = ts.ExportErrors
	}
	return out
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	b, err := json.MarshalIndent(s.snapshot().metricsSnapshot, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.write(w, append(b, '\n'))
}

// handleProm serves GET /metrics/prom: the same counters as the JSON
// snapshot — taken from the same single read of the atomics — in the
// Prometheus text exposition format, plus the latency histograms in
// native histogram form.
func (s *Server) handleProm(w http.ResponseWriter, r *http.Request) {
	snap := s.snapshot()
	w.Header().Set("Content-Type", telemetry.ContentType)
	p := telemetry.NewPromWriter(w)

	p.Header("jsonski_requests_total", "Requests served, by endpoint.", "counter")
	p.Int("jsonski_requests_total", []telemetry.Label{{Name: "endpoint", Value: "query"}}, snap.Requests.Query)
	p.Int("jsonski_requests_total", []telemetry.Label{{Name: "endpoint", Value: "multi"}}, snap.Requests.Multi)
	p.Int("jsonski_requests_total", []telemetry.Label{{Name: "endpoint", Value: "doc"}}, snap.Requests.Doc)
	p.Header("jsonski_request_errors_total", "Requests or records that produced an error response or error line.", "counter")
	p.Int("jsonski_request_errors_total", nil, snap.Requests.Errors)
	p.Header("jsonski_in_flight_requests", "Evaluation requests currently being served.", "gauge")
	p.Int("jsonski_in_flight_requests", nil, snap.Requests.InFlight)

	p.Header("jsonski_io_bytes_total", "Bytes moved over HTTP, by direction.", "counter")
	p.Int("jsonski_io_bytes_total", []telemetry.Label{{Name: "direction", Value: "in"}}, snap.IO.BytesIn)
	p.Int("jsonski_io_bytes_total", []telemetry.Label{{Name: "direction", Value: "out"}}, snap.IO.BytesOut)

	p.Header("jsonski_records_total", "JSON records evaluated.", "counter")
	p.Int("jsonski_records_total", nil, snap.Engine.Records)
	p.Header("jsonski_record_errors_total", "Records whose evaluation failed.", "counter")
	p.Int("jsonski_record_errors_total", nil, snap.Engine.RecordErrors)
	p.Header("jsonski_matches_total", "Values emitted by the query engines.", "counter")
	p.Int("jsonski_matches_total", nil, snap.Engine.Matches)
	p.Header("jsonski_engine_input_bytes_total", "Bytes handed to the query engines.", "counter")
	p.Int("jsonski_engine_input_bytes_total", nil, snap.Engine.InputBytes)
	p.Header("jsonski_skipped_bytes_total", "Bytes fast-forwarded over, by paper group G1..G5.", "counter")
	for g, v := range snap.Engine.SkippedBytes {
		p.Int("jsonski_skipped_bytes_total",
			[]telemetry.Label{{Name: "group", Value: fastforward.Group(g).String()}}, v)
	}
	p.Header("jsonski_fast_forward_ratio", "Fraction of engine input bytes fast-forwarded over.", "gauge")
	p.Value("jsonski_fast_forward_ratio", nil, snap.Engine.FastForwardRatio)
	// Skip-efficiency cost accounting: the per-group fast-forward charges
	// (same counters as jsonski_skipped_bytes_total, under the "ff" name
	// that pairs with the scanned-byte complement below), the scanned
	// total, and the ratio derived from exactly those two families.
	p.Header("jsonski_ff_bytes_total", "Bytes fast-forwarded over, by Table 1 charge group G1..G5.", "counter")
	for g, v := range snap.Engine.SkippedBytes {
		p.Int("jsonski_ff_bytes_total",
			[]telemetry.Label{{Name: "group", Value: fastforward.Group(g).String()}}, v)
	}
	p.Header("jsonski_scanned_bytes_total", "Bytes the engines examined rather than fast-forwarded over.", "counter")
	p.Int("jsonski_scanned_bytes_total", nil, snap.Engine.ScannedBytes)
	p.Header("jsonski_skip_ratio", "Fast-forwarded fraction of all charged bytes: ff / (ff + scanned).", "gauge")
	p.Value("jsonski_skip_ratio", nil, snap.Engine.SkipRatio)
	p.Header("jsonski_cancelled_reads_total", "Request bodies abandoned because the client went away.", "counter")
	p.Int("jsonski_cancelled_reads_total", nil, snap.IO.CancelledReads)

	p.Header("jsonski_cache_events_total", "Compiled-query cache events.", "counter")
	for _, e := range []struct {
		ev string
		v  int64
	}{{"hit", snap.Cache.Hits}, {"miss", snap.Cache.Misses}, {"eviction", snap.Cache.Evictions}} {
		p.Int("jsonski_cache_events_total", []telemetry.Label{{Name: "event", Value: e.ev}}, e.v)
	}
	p.Header("jsonski_cache_entries", "Compiled queries resident in the LRU cache.", "gauge")
	p.Int("jsonski_cache_entries", nil, int64(snap.Cache.Size))
	p.Header("jsonski_cache_hit_ratio", "Compiled-query cache hit ratio.", "gauge")
	p.Value("jsonski_cache_hit_ratio", nil, snap.Cache.HitRate)

	p.Header("jsonski_index_cache_enabled", "Whether the structural-index cache is enabled.", "gauge")
	p.Int("jsonski_index_cache_enabled", nil, boolGauge(snap.IndexCache.Enabled))
	if snap.IndexCache.Enabled {
		p.Header("jsonski_index_cache_events_total", "Structural-index cache events.", "counter")
		for _, e := range []struct {
			ev string
			v  int64
		}{{"hit", snap.IndexCache.Hits}, {"miss", snap.IndexCache.Misses}, {"eviction", snap.IndexCache.Evictions}} {
			p.Int("jsonski_index_cache_events_total", []telemetry.Label{{Name: "event", Value: e.ev}}, e.v)
		}
		p.Header("jsonski_index_cache_bytes", "Bytes of documents resident in the structural-index cache.", "gauge")
		p.Int("jsonski_index_cache_bytes", nil, snap.IndexCache.Bytes)
		p.Header("jsonski_index_cache_hit_ratio", "Structural-index cache hit ratio.", "gauge")
		p.Value("jsonski_index_cache_hit_ratio", nil, snap.IndexCache.HitRate)
	}

	p.Header("jsonski_catalog_enabled", "Whether the persistent index catalog (-index-dir) is enabled.", "gauge")
	p.Int("jsonski_catalog_enabled", nil, boolGauge(snap.Catalog.Enabled))
	if snap.Catalog.Enabled {
		p.Header("jsonski_catalog_events_total", "Persistent index catalog events.", "counter")
		for _, e := range []struct {
			ev string
			v  int64
		}{
			{"hit", snap.Catalog.Hits}, {"miss", snap.Catalog.Misses},
			{"open", snap.Catalog.Opens}, {"build", snap.Catalog.Builds},
			{"eviction", snap.Catalog.Evictions}, {"invalidated", snap.Catalog.Invalidated},
		} {
			p.Int("jsonski_catalog_events_total", []telemetry.Label{{Name: "event", Value: e.ev}}, e.v)
		}
		p.Header("jsonski_catalog_entries", "Serialized index sidecars resident in the catalog.", "gauge")
		p.Int("jsonski_catalog_entries", nil, int64(snap.Catalog.Entries))
		p.Header("jsonski_catalog_bytes", "On-disk bytes of cataloged sidecars.", "gauge")
		p.Int("jsonski_catalog_bytes", nil, snap.Catalog.Bytes)
		p.Header("jsonski_catalog_hit_ratio", "Catalog hit ratio on single-document queries.", "gauge")
		p.Value("jsonski_catalog_hit_ratio", nil, snap.Catalog.HitRate)
	}

	p.Header("jsonski_workers", "Evaluation worker goroutines.", "gauge")
	p.Int("jsonski_workers", nil, int64(snap.Workers.Count))
	p.Header("jsonski_worker_queue_depth", "Accepted-but-unstarted record evaluations.", "gauge")
	p.Int("jsonski_worker_queue_depth", nil, int64(snap.Workers.QueueDepth))
	p.Header("jsonski_worker_queue_capacity", "Worker queue capacity.", "gauge")
	p.Int("jsonski_worker_queue_capacity", nil, int64(snap.Workers.QueueCapacity))

	p.Header("jsonski_request_duration_seconds", "Whole-request latency, by endpoint.", "histogram")
	p.Histogram("jsonski_request_duration_seconds",
		[]telemetry.Label{{Name: "endpoint", Value: "query"}}, snap.queryLatency)
	p.Histogram("jsonski_request_duration_seconds",
		[]telemetry.Label{{Name: "endpoint", Value: "multi"}}, snap.multiLatency)
	p.Histogram("jsonski_request_duration_seconds",
		[]telemetry.Label{{Name: "endpoint", Value: "doc"}}, snap.docLatency)
	p.Header("jsonski_record_duration_seconds", "Single-record evaluation latency.", "histogram")
	p.Histogram("jsonski_record_duration_seconds", nil, snap.recordLatency)

	p.Header("jsonski_trace_enabled", "Whether distributed tracing is enabled.", "gauge")
	p.Int("jsonski_trace_enabled", nil, boolGauge(snap.Trace.Enabled))
	if snap.Trace.Enabled {
		p.Header("jsonski_trace_spans_total", "Trace spans, by pipeline outcome.", "counter")
		for _, e := range []struct {
			ev string
			v  int64
		}{
			{"started", snap.Trace.SpansStarted}, {"sampled", snap.Trace.SpansSampled},
			{"forced", snap.Trace.SpansForced}, {"dropped", snap.Trace.SpansDropped},
			{"exported", snap.Trace.SpansExported},
		} {
			p.Int("jsonski_trace_spans_total", []telemetry.Label{{Name: "outcome", Value: e.ev}}, e.v)
		}
		p.Header("jsonski_trace_export_batches_total", "Span batches handed to the trace sinks.", "counter")
		p.Int("jsonski_trace_export_batches_total", nil, snap.Trace.ExportBatches)
		p.Header("jsonski_trace_export_errors_total", "Trace sink writes that failed (POST or file).", "counter")
		p.Int("jsonski_trace_export_errors_total", nil, snap.Trace.ExportErrors)
	}

	p.Header("jsonski_uptime_seconds", "Seconds since the server started.", "gauge")
	p.Value("jsonski_uptime_seconds", nil, snap.UptimeSeconds)
	b := telemetry.BuildInfo()
	p.Header("jsonski_build_info", "Build metadata; the value is always 1.", "gauge")
	p.Int("jsonski_build_info", []telemetry.Label{
		{Name: "go_version", Value: b.GoVersion},
		{Name: "revision", Value: b.Revision},
		{Name: "modified", Value: strconv.FormatBool(b.Modified)},
		{Name: "version", Value: b.Version()},
	}, 1)

	_ = p.Flush()
}

func boolGauge(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.write(w, []byte("ok\n"))
}

// handleReadyz serves the readiness probe: 200 while the server is
// accepting work, 503 once BeginShutdown has been called or while the
// worker queue is fully saturated (submitting would block), so load
// balancers drain and route around an overloaded instance.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.down.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		s.write(w, []byte("shutting down\n"))
		return
	}
	if s.pool.queueDepth() >= s.pool.queueCap() {
		w.WriteHeader(http.StatusServiceUnavailable)
		s.write(w, []byte("worker queue saturated\n"))
		return
	}
	s.write(w, []byte("ok\n"))
}
