package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"jsonski/internal/telemetry"
)

// otlpWire mirrors the slice of the OTLP/JSON export body these tests
// inspect (the collector side of internal/telemetry's encoder).
type otlpWire struct {
	ResourceSpans []struct {
		ScopeSpans []struct {
			Spans []struct {
				TraceID      string `json:"traceId"`
				SpanID       string `json:"spanId"`
				ParentSpanID string `json:"parentSpanId"`
				Name         string `json:"name"`
				Attributes   []struct {
					Key   string `json:"key"`
					Value struct {
						StringValue *string  `json:"stringValue"`
						IntValue    *string  `json:"intValue"`
						DoubleValue *float64 `json:"doubleValue"`
						BoolValue   *bool    `json:"boolValue"`
					} `json:"value"`
				} `json:"attributes"`
			} `json:"spans"`
		} `json:"scopeSpans"`
	} `json:"resourceSpans"`
}

type wireSpan = struct {
	TraceID      string `json:"traceId"`
	SpanID       string `json:"spanId"`
	ParentSpanID string `json:"parentSpanId"`
	Name         string `json:"name"`
	Attributes   []struct {
		Key   string `json:"key"`
		Value struct {
			StringValue *string  `json:"stringValue"`
			IntValue    *string  `json:"intValue"`
			DoubleValue *float64 `json:"doubleValue"`
			BoolValue   *bool    `json:"boolValue"`
		} `json:"value"`
	} `json:"attributes"`
}

// collector is a test OTLP/HTTP collector accumulating every span
// POSTed to /v1/traces.
type collector struct {
	mu    sync.Mutex
	spans []wireSpan
}

func (c *collector) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/traces" {
			http.NotFound(w, r)
			return
		}
		var body otlpWire
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		c.mu.Lock()
		for _, rs := range body.ResourceSpans {
			for _, ss := range rs.ScopeSpans {
				c.spans = append(c.spans, ss.Spans...)
			}
		}
		c.mu.Unlock()
		w.WriteHeader(http.StatusOK)
	})
}

func (c *collector) snapshot() []wireSpan {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]wireSpan(nil), c.spans...)
}

// TestTraceEndToEndOTLP drives the full tracing pipeline: an inbound
// W3C traceparent enters /query, the response carries the propagated
// context back, and after the exporter drains, the collector holds a
// root span on the inbound trace ID with index-lookup and engine-run
// children whose attributes carry the paper's per-group fast-forward
// cost accounting.
func TestTraceEndToEndOTLP(t *testing.T) {
	col := &collector{}
	cts := httptest.NewServer(col.handler())
	defer cts.Close()

	tracer := telemetry.NewTracer(telemetry.TracerConfig{SampleRatio: 1})
	exporter, err := telemetry.NewExporter(tracer, telemetry.ExporterConfig{
		Endpoint: cts.URL,
		Service:  "jsonskid-test",
		Interval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 2, Tracer: tracer})

	const inboundTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	body := `{"skip": {"deep": [1, 2, 3], "pad": "` + strings.Repeat("x", 256) + `"}, "a": {"b": 7}}`
	req, err := http.NewRequest(http.MethodPost,
		ts.URL+"/query?path="+url.QueryEscape("$.a.b"), strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", "00-"+inboundTrace+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	if got := strings.TrimSpace(string(out)); got != `{"record":0,"value":7}` {
		t.Fatalf("body = %q", got)
	}
	tp := resp.Header.Get("traceparent")
	if !strings.HasPrefix(tp, "00-"+inboundTrace+"-") {
		t.Fatalf("response traceparent %q does not continue the inbound trace", tp)
	}

	// Close forces the final ring drain, so every span of the request is
	// at the collector afterwards.
	if err := exporter.Close(); err != nil {
		t.Fatal(err)
	}
	spans := col.snapshot()
	byName := map[string]wireSpan{}
	for _, sp := range spans {
		if sp.TraceID != inboundTrace {
			t.Fatalf("span %q exported under trace %s, want %s", sp.Name, sp.TraceID, inboundTrace)
		}
		byName[sp.Name] = sp
	}
	root, ok := byName["POST /query"]
	if !ok {
		t.Fatalf("no root span in export: %+v", spans)
	}
	if root.ParentSpanID != "00f067aa0ba902b7" {
		t.Fatalf("root parent = %q, want the inbound span ID", root.ParentSpanID)
	}
	for _, name := range []string{"index.lookup", "engine.run", "sink.flush"} {
		child, ok := byName[name]
		if !ok {
			t.Fatalf("no %s child in export: %+v", name, spans)
		}
		if child.ParentSpanID != root.SpanID {
			t.Fatalf("%s parent = %q, want root %q", name, child.ParentSpanID, root.SpanID)
		}
	}
	attrs := map[string]string{}
	for _, a := range byName["engine.run"].Attributes {
		if a.Value.IntValue != nil {
			attrs[a.Key] = *a.Value.IntValue
		}
	}
	if attrs["jsonski.input.bytes"] == "" || attrs["jsonski.input.bytes"] == "0" {
		t.Fatalf("engine.run lacks input bytes: %v", attrs)
	}
	if attrs["jsonski.scanned.bytes"] == "" {
		t.Fatalf("engine.run lacks scanned bytes: %v", attrs)
	}
	ffTotal := 0
	for g := 1; g <= 5; g++ {
		v, ok := attrs["jsonski.ff.bytes.G"+string(rune('0'+g))]
		if !ok {
			t.Fatalf("engine.run lacks ff bytes for G%d: %v", g, attrs)
		}
		var n int
		for _, c := range v {
			n = n*10 + int(c-'0')
		}
		ffTotal += n
	}
	if ffTotal == 0 {
		t.Fatalf("no bytes fast-forwarded on a skippable document: %v", attrs)
	}

	// The same accounting reaches both metric expositions.
	snap := getMetrics(t, ts.URL)
	if !snap.Trace.Enabled || snap.Trace.SpansStarted == 0 || snap.Trace.SpansExported == 0 {
		t.Fatalf("trace metrics: %+v", snap.Trace)
	}
	if snap.Engine.ScannedBytes <= 0 || snap.Engine.SkipRatio <= 0 {
		t.Fatalf("engine accounting: %+v", snap.Engine)
	}
	promResp, err := http.Get(ts.URL + "/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(promResp.Body)
	promResp.Body.Close()
	for _, want := range []string{
		`jsonski_ff_bytes_total{group="G1"}`,
		"jsonski_scanned_bytes_total",
		"jsonski_skip_ratio",
		"jsonski_trace_enabled 1",
		`jsonski_trace_spans_total{outcome="started"}`,
		`jsonski_build_info{`,
	} {
		if !strings.Contains(string(prom), want) {
			t.Fatalf("prom exposition missing %q", want)
		}
	}
}

// TestTraceHammerStalledExporter hammers a fully-sampled server with
// concurrent traced requests while the collector never answers, then
// begins shutdown mid-flight. The request path must never block on the
// stalled exporter (drop-on-full ring), every request must finish, the
// drop counter must register the overflow, and exporter.Close must
// return promptly because each final POST is bounded by its timeout.
func TestTraceHammerStalledExporter(t *testing.T) {
	stall := make(chan struct{})
	cts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-stall // hold every POST until the test ends
	}))
	defer func() { close(stall); cts.Close() }()

	tracer := telemetry.NewTracer(telemetry.TracerConfig{
		SampleRatio: 1,
		RingSize:    16, // tiny ring so the stall overflows it fast
	})
	exporter, err := telemetry.NewExporter(tracer, telemetry.ExporterConfig{
		Endpoint: cts.URL,
		Interval: time.Millisecond,
		Timeout:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{Workers: 4, Tracer: tracer})

	const (
		goroutines = 8
		perG       = 25
	)
	var in strings.Builder
	for i := 0; i < 20; i++ {
		in.WriteString(`{"skip": [1, 2, 3], "v": 1}` + "\n")
	}
	queryURL := ts.URL + "/query?path=" + url.QueryEscape("$.v")
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if g == goroutines/2 && i == perG/2 {
					s.BeginShutdown() // mid-flight: in-flight requests unaffected
				}
				resp, err := http.Post(queryURL, "application/x-ndjson", strings.NewReader(in.String()))
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					t.Errorf("goroutine %d: draining: %v", g, err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("goroutine %d: status %d", g, resp.StatusCode)
				}
			}
		}(g)
	}
	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(30 * time.Second):
		t.Fatal("traced requests blocked on the stalled exporter")
	}

	closed := make(chan error, 1)
	go func() { closed <- exporter.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("exporter.Close hung on the stalled collector")
	}

	st := tracer.Stats()
	if st.Started != goroutines*perG {
		t.Fatalf("started %d spans, want %d roots", st.Started, goroutines*perG)
	}
	if st.DroppedSpans == 0 {
		t.Fatalf("stalled exporter produced no drops: %+v", st)
	}
	if st.ExportErrors == 0 {
		t.Fatalf("stalled collector produced no export errors: %+v", st)
	}
}
