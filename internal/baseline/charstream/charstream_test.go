package charstream

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func mustEval(t *testing.T, expr, data string) []string {
	t.Helper()
	ev, err := Compile(expr)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	if _, err := ev.Run([]byte(data), func(s, e int) { got = append(got, data[s:e]) }); err != nil {
		t.Fatalf("%s: %v", expr, err)
	}
	return got
}

func TestBasicQueries(t *testing.T) {
	data := `{"a": 1, "b": {"c": [10, 20, 30]}, "e": [{"f": 5}, {"f": 6}]}`
	cases := []struct {
		q    string
		want []string
	}{
		{"$.a", []string{"1"}},
		{"$.b.c[1]", []string{"20"}},
		{"$.b.c[*]", []string{"10", "20", "30"}},
		{"$.e[*].f", []string{"5", "6"}},
		{"$.nope", nil},
		{"$", []string{data}},
	}
	for _, c := range cases {
		if got := mustEval(t, c.q, data); !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: got %q want %q", c.q, got, c.want)
		}
	}
}

func TestStringsWithMetachars(t *testing.T) {
	data := `{"x": "fake\": {", "y": {"z": "hit"}}`
	got := mustEval(t, "$.y.z", data)
	if !reflect.DeepEqual(got, []string{`"hit"`}) {
		t.Fatalf("got %q", got)
	}
}

func TestErrors(t *testing.T) {
	ev, _ := Compile("$.a")
	for _, in := range []string{"", `{"a": "unterminated`, `{"a" 1}`, `{1:2}`} {
		if _, err := ev.Run([]byte(in), nil); err == nil {
			t.Errorf("expected error for %q", in)
		}
	}
}

func genArray(n int) string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"id": %d, "tags": ["a,b", "c]d"], "v": {"x": %d}}`, i, i*i)
	}
	sb.WriteByte(']')
	return sb.String()
}

func TestParallelMatchesSerial(t *testing.T) {
	data := genArray(500)
	for _, q := range []string{"$[*].id", "$[*].v.x", "$[10:20].id", "$[3]", "$[*].tags[1]"} {
		ev, err := Compile(q)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := ev.Count([]byte(data))
		if err != nil {
			t.Fatal(err)
		}
		par, err := ev.ParallelCount([]byte(data), 8)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if par != serial {
			t.Errorf("%s: parallel %d != serial %d", q, par, serial)
		}
	}
}

func TestParallelEmitsSameValues(t *testing.T) {
	data := genArray(200)
	q := "$[*].v.x"
	ev, _ := Compile(q)
	var serial []string
	ev.Run([]byte(data), func(s, e int) { serial = append(serial, data[s:e]) })
	var mu sync.Mutex
	var par []string
	if _, err := ev.ParallelRun([]byte(data), 8, func(s, e int) {
		mu.Lock()
		par = append(par, data[s:e])
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	if len(par) != len(serial) {
		t.Fatalf("parallel %d values, serial %d", len(par), len(serial))
	}
	seen := map[string]int{}
	for _, v := range serial {
		seen[v]++
	}
	for _, v := range par {
		seen[v]--
	}
	for v, n := range seen {
		if n != 0 {
			t.Errorf("value %q count mismatch %d", v, n)
		}
	}
}

func TestParallelLeadingChildStep(t *testing.T) {
	inner := genArray(300)
	data := `{"meta": {"n": 300}, "pd": ` + inner + `, "tail": [1,2,3]}`
	ev, _ := Compile("$.pd[*].id")
	serial, _ := ev.Count([]byte(data))
	par, err := ev.ParallelCount([]byte(data), 8)
	if err != nil {
		t.Fatal(err)
	}
	if serial != 300 || par != serial {
		t.Fatalf("serial %d par %d", serial, par)
	}
}

func TestParallelChildOnlyPath(t *testing.T) {
	data := `{"a": {"b": {"c": 7}}}`
	ev, _ := Compile("$.a.b.c")
	par, err := ev.ParallelCount([]byte(data), 4)
	if err != nil || par != 1 {
		t.Fatalf("par %d err %v", par, err)
	}
}

func TestParallelNoMatch(t *testing.T) {
	ev, _ := Compile("$.missing[*].x")
	par, err := ev.ParallelCount([]byte(`{"a": [1,2,3]}`), 4)
	if err != nil || par != 0 {
		t.Fatalf("par %d err %v", par, err)
	}
}

func TestParallelRandomEscapesNearChunkBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var sb strings.Builder
	sb.WriteByte('[')
	for i := 0; i < 400; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		// strings dense with backslashes and braces to stress the
		// speculation boundaries
		fmt.Fprintf(&sb, `{"s": "%s", "id": %d}`,
			strings.Repeat(`\\`, rng.Intn(6))+`{[,]}`+strings.Repeat(`\"`, rng.Intn(4)), i)
	}
	sb.WriteByte(']')
	data := sb.String()
	ev, _ := Compile("$[*].id")
	serial, err := ev.Count([]byte(data))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 16} {
		par, err := ev.ParallelCount([]byte(data), workers)
		if err != nil {
			t.Fatal(err)
		}
		if par != serial {
			t.Fatalf("workers %d: par %d serial %d", workers, par, serial)
		}
	}
}
