// Package charstream is the JPStream-class baseline: a character-by-
// character streaming JSONPath evaluator driven by a dual-stack pushdown
// automaton (paper §2, Figure 4). It examines every input byte exactly
// once, maintains a syntax stack (object/array nesting) and a query stack
// (automaton state per level), and uses no bitwise or SIMD parallelism —
// the processing style whose cost motivates JSONSki's fast-forwarding.
package charstream

import (
	"fmt"

	"jsonski/internal/automaton"
	"jsonski/internal/baseline/domparser"
	"jsonski/internal/jsonpath"
)

// Evaluator is a compiled query evaluated by character-level streaming.
// It is immutable and safe for concurrent use.
type Evaluator struct {
	aut *automaton.Automaton
}

// New compiles the evaluator for a path.
func New(p *jsonpath.Path) *Evaluator {
	return &Evaluator{aut: automaton.New(p)}
}

// Compile parses and compiles in one step.
func Compile(expr string) (*Evaluator, error) {
	p, err := jsonpath.Parse(expr)
	if err != nil {
		return nil, err
	}
	return New(p), nil
}

// scanner is the per-run mutable state. The Go call stack of object()
// and array() plays the role of JPStream's syntax+query stacks.
type scanner struct {
	data  []byte
	pos   int
	aut   *automaton.Automaton
	emit  func(start, end int)
	count int64

	// rootDoc caches the record DOM for absolute ($) references inside
	// filter predicates. Filter candidates are decided by the reference
	// evaluator over the consumed span — in character here, since this
	// baseline examines every byte anyway.
	rootDoc *domparser.Doc
}

// Run streams data, invoking emit (which may be nil) for each match, and
// returns the match count.
func (ev *Evaluator) Run(data []byte, emit func(start, end int)) (int64, error) {
	sc := &scanner{data: data, aut: ev.aut, emit: emit}
	if err := sc.run(); err != nil {
		return sc.count, err
	}
	return sc.count, nil
}

// Count is Run without an emit callback.
func (ev *Evaluator) Count(data []byte) (int64, error) {
	return ev.Run(data, nil)
}

func (sc *scanner) run() error {
	sc.skipWS()
	if sc.pos >= len(sc.data) {
		return fmt.Errorf("charstream: empty input")
	}
	if sc.aut.StepCount() == 0 {
		start := sc.pos
		if err := sc.skipValue(); err != nil {
			return err
		}
		sc.match(start, sc.pos)
		return nil
	}
	switch sc.data[sc.pos] {
	case '{':
		return sc.object(0, true)
	case '[':
		return sc.array(0, true)
	default:
		return sc.skipValue() // primitive record: no match possible
	}
}

func (sc *scanner) match(start, end int) {
	sc.count++
	if sc.emit != nil {
		sc.emit(start, end)
	}
}

func (sc *scanner) skipWS() {
	for sc.pos < len(sc.data) {
		switch sc.data[sc.pos] {
		case ' ', '\t', '\n', '\r':
			sc.pos++
		default:
			return
		}
	}
}

// object consumes an object. live indicates whether state q can still
// progress; dead subtrees are still parsed in full (that is the point of
// this baseline) but never match.
func (sc *scanner) object(q int, live bool) error {
	sc.pos++ // '{'
	for {
		sc.skipWS()
		if sc.pos >= len(sc.data) {
			return fmt.Errorf("charstream: EOF inside object")
		}
		switch sc.data[sc.pos] {
		case '}':
			sc.pos++
			return nil
		case ',':
			sc.pos++
			continue
		case '"':
		default:
			return fmt.Errorf("charstream: expected key at %d, got %q", sc.pos, sc.data[sc.pos])
		}
		keyStart := sc.pos
		if err := sc.skipString(); err != nil {
			return err
		}
		key := sc.data[keyStart+1 : sc.pos-1]
		sc.skipWS()
		if sc.pos >= len(sc.data) || sc.data[sc.pos] != ':' {
			return fmt.Errorf("charstream: expected ':' at %d", sc.pos)
		}
		sc.pos++
		sc.skipWS()
		q2, status := q, automaton.Unmatched
		if live {
			q2, status = sc.aut.MatchKey(q, key)
		}
		start := sc.pos
		if status == automaton.Candidate {
			if err := sc.skipValue(); err != nil {
				return err
			}
			sc.probeCandidate(q2, start, sc.pos)
			continue
		}
		if err := sc.value(q2, status == automaton.Matched); err != nil {
			return err
		}
		if status == automaton.Accept {
			sc.match(start, sc.pos)
		}
	}
}

func (sc *scanner) array(q int, live bool) error {
	sc.pos++ // '['
	idx := 0
	for {
		sc.skipWS()
		if sc.pos >= len(sc.data) {
			return fmt.Errorf("charstream: EOF inside array")
		}
		switch sc.data[sc.pos] {
		case ']':
			sc.pos++
			return nil
		case ',':
			sc.pos++
			idx++
			continue
		}
		q2, status := q, automaton.Unmatched
		if live {
			q2, status = sc.aut.MatchIndex(q, idx)
		}
		start := sc.pos
		if status == automaton.Candidate {
			if err := sc.skipValue(); err != nil {
				return err
			}
			sc.probeCandidate(q2, start, sc.pos)
			continue
		}
		if err := sc.value(q2, status == automaton.Matched); err != nil {
			return err
		}
		if status == automaton.Accept {
			sc.match(start, sc.pos)
		}
	}
}

// probeCandidate decides a filter candidate: parse the consumed span,
// test the predicate, and run any remaining steps over the same DOM.
func (sc *scanner) probeCandidate(child, start, end int) {
	doc, err := domparser.ParseDoc(sc.data[start:end])
	if err != nil {
		return // malformed candidate selects nothing
	}
	st := sc.aut.Step(child - 1)
	suffix := make([]jsonpath.Step, 0, sc.aut.StepCount()-child)
	needAbs := st.Filter.HasAbsolute()
	for i := child; i < sc.aut.StepCount(); i++ {
		s := sc.aut.Step(i)
		suffix = append(suffix, s)
		if s.Kind == jsonpath.Filter && s.Filter.HasAbsolute() {
			needAbs = true
		}
	}
	if needAbs {
		sc.ensureRootDoc()
		doc.Abs = sc.rootDoc
	}
	if !doc.Holds(st.Filter, doc.Root) {
		return
	}
	if len(suffix) == 0 {
		sc.match(start, end)
		return
	}
	doc.EvalSpans(suffix, func(s2, e2 int) { sc.match(start+s2, start+e2) })
}

func (sc *scanner) ensureRootDoc() {
	if sc.rootDoc == nil {
		d, err := domparser.ParseDoc(sc.data)
		if err != nil {
			d = &domparser.Doc{} // absent root: absolute refs select nothing
		}
		sc.rootDoc = d
	}
}

// value consumes one value of any type, matching against q2 when live.
func (sc *scanner) value(q2 int, live bool) error {
	switch sc.data[sc.pos] {
	case '{':
		return sc.object(q2, live)
	case '[':
		return sc.array(q2, live)
	case '"':
		return sc.skipString()
	default:
		return sc.skipPrimitive()
	}
}

// skipValue consumes one value without matching.
func (sc *scanner) skipValue() error {
	return sc.value(0, false)
}

func (sc *scanner) skipString() error {
	sc.pos++ // opening quote
	for sc.pos < len(sc.data) {
		switch sc.data[sc.pos] {
		case '\\':
			sc.pos += 2
		case '"':
			sc.pos++
			return nil
		default:
			sc.pos++
		}
	}
	return fmt.Errorf("charstream: unterminated string")
}

func (sc *scanner) skipPrimitive() error {
	for sc.pos < len(sc.data) {
		switch sc.data[sc.pos] {
		case ',', '}', ']', ' ', '\t', '\n', '\r':
			return nil
		default:
			sc.pos++
		}
	}
	return nil
}
