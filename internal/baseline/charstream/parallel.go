package charstream

import (
	"fmt"
	"sync"
	"sync/atomic"

	"jsonski/internal/automaton"
	"jsonski/internal/jsonpath"
)

// This file implements the speculative parallel mode of the JPStream-class
// baseline for single large records (paper Figure 10, "JPStream(16)").
//
// JPStream proper enumerates automaton states to process chunks of one
// record in parallel. We reproduce the same structure with a simplified,
// still-speculative pipeline:
//
//	A. (parallel) each chunk is scanned twice, once per possible
//	   starting string-state (the speculation), recording the resulting
//	   end-state and nesting-depth delta per variant;
//	B. (serial, O(#chunks)) string states and absolute depths are
//	   stitched chunk to chunk;
//	C. (parallel) each chunk is re-scanned with its now-known start
//	   state, collecting the element separators of the target array;
//	D. (parallel) workers evaluate the query's remaining steps over
//	   disjoint element ranges.
//
// Leading child steps ($.pd before [*]) are resolved serially first: on
// the evaluated datasets the target array starts near the record head, so
// this prefix scan is short.

// chunkScan is the per-variant outcome of speculatively scanning a chunk.
type chunkScan struct {
	endInStr   bool
	depthDelta int
}

// scanChunk scans data[lo:hi] with an assumed starting string-state.
func scanChunk(data []byte, lo, hi int, inStr bool) chunkScan {
	depth := 0
	for i := lo; i < hi; i++ {
		c := data[i]
		if inStr {
			switch c {
			case '\\':
				i++
			case '"':
				inStr = false
			}
			continue
		}
		switch c {
		case '"':
			inStr = true
		case '{', '[':
			depth++
		case '}', ']':
			depth--
		}
	}
	return chunkScan{endInStr: inStr, depthDelta: depth}
}

// sepScan re-scans a chunk with known start state, collecting positions
// of the commas that separate elements of the array whose content sits at
// absolute depth arrayDepth, and the position of the bracket closing it.
func sepScan(data []byte, lo, hi int, inStr bool, depth, arrayDepth int) (commas []int, closeAt int) {
	closeAt = -1
	for i := lo; i < hi; i++ {
		c := data[i]
		if inStr {
			switch c {
			case '\\':
				i++
			case '"':
				inStr = false
			}
			continue
		}
		switch c {
		case '"':
			inStr = true
		case '{', '[':
			depth++
		case '}', ']':
			depth--
			if depth == arrayDepth-1 {
				return commas, i
			}
		case ',':
			if depth == arrayDepth {
				commas = append(commas, i)
			}
		}
	}
	return commas, -1
}

// ParallelRun evaluates the query over one large record using `workers`
// goroutines. emit may be nil; it may be called concurrently.
func (ev *Evaluator) ParallelRun(data []byte, workers int, emit func(start, end int)) (int64, error) {
	nSteps := ev.aut.StepCount()
	if workers <= 1 || nSteps == 0 {
		return ev.Run(data, emit)
	}
	// Absolute ($) references in filter predicates resolve against the
	// whole record, which sharded workers cannot see.
	for i := 0; i < nSteps; i++ {
		if st := ev.aut.Step(i); st.Kind == jsonpath.Filter && st.Filter.HasAbsolute() {
			return ev.Run(data, emit)
		}
	}
	// Resolve leading child steps serially.
	sc := &scanner{data: data, aut: ev.aut}
	sc.skipWS()
	consumed := 0
	for consumed < nSteps {
		st := ev.aut.Step(consumed)
		if st.Kind == jsonpath.Index || st.Kind == jsonpath.Slice {
			break // the array step to parallelize over
		}
		if st.Kind != jsonpath.Child || !st.Streamable() {
			// Wildcard/filter/union prefixes are not worth speculating on.
			return ev.Run(data, emit)
		}
		if sc.pos >= len(data) || data[sc.pos] != '{' {
			return 0, nil
		}
		found, err := sc.seekAttr(st.Name)
		if err != nil {
			return 0, err
		}
		if !found {
			return 0, nil
		}
		consumed++
	}
	if consumed == nSteps {
		// The whole path was child steps; the value under the cursor is
		// the single match.
		start := sc.pos
		if err := sc.skipValue(); err != nil {
			return 0, err
		}
		if emit != nil {
			emit(start, sc.pos)
		}
		return 1, nil
	}
	step := ev.aut.Step(consumed)
	if !step.Streamable() {
		// Backward/negative slices need the array length up front.
		return ev.Run(data, emit)
	}
	if sc.pos >= len(data) || data[sc.pos] != '[' {
		return 0, nil // array step over a non-array value
	}
	aryOpen := sc.pos
	elems, err := discoverElements(data, aryOpen, workers)
	if err != nil {
		return 0, err
	}
	// Remaining path: steps after the array step.
	rest := &jsonpath.Path{Steps: append([]jsonpath.Step(nil), pathSteps(ev)[consumed+1:]...)}
	sub := New(rest)
	var (
		next  atomic.Int64
		total atomic.Int64
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(elems) {
					return
				}
				if !automaton.IndexMatches(step, i) {
					continue
				}
				el := elems[i]
				var subEmit func(s, e int)
				if emit != nil {
					subEmit = func(s, e int) { emit(el.start+s, el.start+e) }
				}
				n, err := sub.runValue(data[el.start:el.end], subEmit)
				if err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
					return
				}
				total.Add(n)
			}
		}()
	}
	wg.Wait()
	return total.Load(), first
}

// runValue evaluates the evaluator's path against a single JSON value
// (not necessarily an object/array record).
func (ev *Evaluator) runValue(data []byte, emit func(start, end int)) (int64, error) {
	sc := &scanner{data: data, aut: ev.aut, emit: emit}
	sc.skipWS()
	if sc.pos >= len(data) {
		return 0, nil
	}
	if ev.aut.StepCount() == 0 {
		start := sc.pos
		if err := sc.skipValue(); err != nil {
			return 0, err
		}
		sc.match(start, sc.pos)
		return sc.count, nil
	}
	var err error
	switch data[sc.pos] {
	case '{':
		err = sc.object(0, true)
	case '[':
		err = sc.array(0, true)
	default:
		return 0, nil
	}
	return sc.count, err
}

// pathSteps exposes the automaton's steps for slicing the remaining path.
func pathSteps(ev *Evaluator) []jsonpath.Step {
	steps := make([]jsonpath.Step, ev.aut.StepCount())
	for i := range steps {
		steps[i] = ev.aut.Step(i)
	}
	return steps
}

// seekAttr scans the object under the cursor for the named attribute,
// leaving the cursor at its value; other values are skipped char by char.
func (sc *scanner) seekAttr(name string) (bool, error) {
	sc.pos++ // '{'
	for {
		sc.skipWS()
		if sc.pos >= len(sc.data) {
			return false, fmt.Errorf("charstream: EOF inside object")
		}
		switch sc.data[sc.pos] {
		case '}':
			sc.pos++
			return false, nil
		case ',':
			sc.pos++
			continue
		case '"':
		default:
			return false, fmt.Errorf("charstream: expected key at %d", sc.pos)
		}
		keyStart := sc.pos
		if err := sc.skipString(); err != nil {
			return false, err
		}
		key := sc.data[keyStart+1 : sc.pos-1]
		sc.skipWS()
		if sc.pos >= len(sc.data) || sc.data[sc.pos] != ':' {
			return false, fmt.Errorf("charstream: expected ':' at %d", sc.pos)
		}
		sc.pos++
		sc.skipWS()
		if string(key) == name {
			return true, nil
		}
		if err := sc.skipValue(); err != nil {
			return false, err
		}
	}
}

// element is a discovered top-level element of the target array.
type element struct{ start, end int }

// discoverElements finds the value spans of the array opening at aryOpen
// using the speculative chunked pipeline (phases A–C).
func discoverElements(data []byte, aryOpen, workers int) ([]element, error) {
	lo := aryOpen + 1
	hi := len(data)
	n := workers * 4 // more chunks than workers for balance
	if hi-lo < 4096 || n < 2 {
		return serialElements(data, aryOpen)
	}
	bounds := make([]int, 0, n+1)
	for i := 0; i <= n; i++ {
		b := lo + (hi-lo)*i/n
		// Slide past backslashes so no chunk starts escaped.
		for b > lo && b < hi && data[b-1] == '\\' {
			b++
		}
		if len(bounds) > 0 && b <= bounds[len(bounds)-1] {
			continue
		}
		bounds = append(bounds, b)
	}
	if bounds[len(bounds)-1] != hi {
		bounds = append(bounds, hi)
	}
	chunks := len(bounds) - 1

	// Phase A: speculative scans, both string-state variants.
	scans := make([][2]chunkScan, chunks)
	parallelFor(chunks, workers, func(i int) {
		scans[i][0] = scanChunk(data, bounds[i], bounds[i+1], false)
		scans[i][1] = scanChunk(data, bounds[i], bounds[i+1], true)
	})

	// Phase B: stitch string states and absolute depths.
	// Depth 0 = level of the array itself; its content sits at depth 1.
	startInStr := make([]bool, chunks)
	startDepth := make([]int, chunks)
	inStr := false
	depth := 1 // we begin just past '['
	for i := 0; i < chunks; i++ {
		startInStr[i] = inStr
		startDepth[i] = depth
		v := 0
		if inStr {
			v = 1
		}
		inStr = scans[i][v].endInStr
		depth += scans[i][v].depthDelta
	}

	// Phase C: collect separators with known start states.
	type seps struct {
		commas  []int
		closeAt int
	}
	parts := make([]seps, chunks)
	parallelFor(chunks, workers, func(i int) {
		c, cl := sepScan(data, bounds[i], bounds[i+1], startInStr[i], startDepth[i], 1)
		parts[i] = seps{c, cl}
	})

	// Assemble element spans between separators.
	var elems []element
	prev := lo
	closeAt := -1
	for i := 0; i < chunks && closeAt < 0; i++ {
		for _, c := range parts[i].commas {
			elems = append(elems, element{prev, c})
			prev = c + 1
		}
		closeAt = parts[i].closeAt
	}
	if closeAt < 0 {
		return nil, fmt.Errorf("charstream: array at %d is not closed", aryOpen)
	}
	if trimmed := trimSpan(data, prev, closeAt); trimmed.start < trimmed.end {
		elems = append(elems, element{prev, closeAt})
	}
	return elems, nil
}

// serialElements is the small-input fallback for discoverElements.
func serialElements(data []byte, aryOpen int) ([]element, error) {
	commas, closeAt := sepScan(data, aryOpen+1, len(data), false, 1, 1)
	if closeAt < 0 {
		return nil, fmt.Errorf("charstream: array at %d is not closed", aryOpen)
	}
	var elems []element
	prev := aryOpen + 1
	for _, c := range commas {
		elems = append(elems, element{prev, c})
		prev = c + 1
	}
	if trimmed := trimSpan(data, prev, closeAt); trimmed.start < trimmed.end {
		elems = append(elems, element{prev, closeAt})
	}
	return elems, nil
}

func trimSpan(data []byte, start, end int) element {
	for start < end {
		switch data[start] {
		case ' ', '\t', '\n', '\r':
			start++
		default:
			return element{start, end}
		}
	}
	return element{start, end}
}

// parallelFor runs fn(0..n-1) across `workers` goroutines.
func parallelFor(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ParallelCount is ParallelRun without an emit callback.
func (ev *Evaluator) ParallelCount(data []byte, workers int) (int64, error) {
	return ev.ParallelRun(data, workers, nil)
}
