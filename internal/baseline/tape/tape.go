// Package tape is the simdjson-class baseline: the two-stage
// preprocessing scheme of Langdale & Lemire (VLDB-J 2019) restated on the
// same SWAR substrate as JSONSki.
//
// Stage 1 scans the whole input with bit-parallel classification and
// materializes a structural index: the positions of every structural
// metacharacter and string quote. Stage 2 walks that index and builds a
// "tape" — a flat array of nodes with subtree-skip links, the moral
// equivalent of simdjson's tape. Queries then traverse the tape.
//
// Like simdjson (and unlike JSONSki), all of the input is indexed and
// materialized before the first query result can be produced, and the
// index + tape consume memory proportional to the input — the contrast
// measured in Figures 10–14 of the paper.
package tape

import (
	"fmt"

	"jsonski/internal/automaton"
	"jsonski/internal/baseline/domparser"
	"jsonski/internal/bits"
	"jsonski/internal/jsonpath"
)

// BuildIndex returns the positions of all structural metacharacters
// ({ } [ ] : ,) outside strings and of all unescaped quotes, ascending.
func BuildIndex(data []byte) []int32 {
	// Preallocate on the JSON-typical density of ~1 structural per 6-8
	// bytes; append grows it when the guess is short.
	out := make([]int32, 0, len(data)/6+8)
	var blk bits.Block
	var ec bits.EscapeCarry
	var sc bits.StringCarry
	for base := 0; base < len(data); base += bits.WordSize {
		end := base + bits.WordSize
		if end > len(data) {
			end = len(data)
		}
		blk.Load(data[base:end])
		escaped := ec.Escaped(blk.EqMask('\\'))
		quotes := blk.EqMask('"') &^ escaped
		inStr := sc.InStringMask(quotes)
		m := (blk.EqMask('{') | blk.EqMask('}') |
			blk.EqMask('[') | blk.EqMask(']') |
			blk.EqMask(':') | blk.EqMask(',')) &^ inStr
		m |= quotes
		for m != 0 {
			out = append(out, int32(base+bits.TrailingZeros(m)))
			m &= m - 1
		}
	}
	return out
}

// Kind tags a tape node.
type Kind uint8

// Tape node kinds.
const (
	KindObject Kind = iota
	KindArray
	KindString
	KindPrimitive
)

// Node is one tape entry. Containers are followed by their descendants
// in document order; Next links to the entry just past the subtree, so a
// traversal can skip a value in O(1).
type Node struct {
	Kind             Kind
	KeyStart, KeyEnd int32 // member key span (quotes excluded); -1 for none
	ValStart, ValEnd int32 // value span in the input
	Next             int32 // index just past this subtree
}

// Tape is the stage-2 output for one record.
type Tape struct {
	Nodes []Node
	data  []byte
}

// FootprintBytes estimates the preprocessing memory this tape pins,
// for the memory-overhead experiment (Figure 13).
func (t *Tape) FootprintBytes() int64 {
	const nodeSize = 28
	return int64(len(t.Nodes)) * nodeSize
}

type builder struct {
	data []byte
	idx  []int32
	si   int // cursor into idx
	out  []Node
}

// Build runs stage 2: structural index to tape.
func Build(data []byte, idx []int32) (*Tape, error) {
	b := &builder{data: data, idx: idx, out: make([]Node, 0, len(idx)/2+4)}
	if b.si >= len(b.idx) {
		// No structural characters at all: a bare primitive record.
		vs, ve := primitiveSpan(data, 0, int32(len(data)))
		if vs >= ve {
			return nil, fmt.Errorf("tape: empty input")
		}
		b.out = append(b.out, Node{Kind: KindPrimitive, KeyStart: -1, KeyEnd: -1,
			ValStart: vs, ValEnd: ve, Next: 1})
		return &Tape{Nodes: b.out, data: data}, nil
	}
	if _, err := b.value(-1, -1); err != nil {
		return nil, err
	}
	return &Tape{Nodes: b.out, data: data}, nil
}

func isWS(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

// value builds the tape for the value starting at the structural cursor.
// keyStart/keyEnd carry the member key span (-1 when none).
func (b *builder) value(keyStart, keyEnd int32) (int32, error) {
	if b.si >= len(b.idx) {
		return 0, fmt.Errorf("tape: unexpected end of structural index")
	}
	p := b.idx[b.si]
	self := int32(len(b.out))
	switch b.data[p] {
	case '{':
		b.out = append(b.out, Node{Kind: KindObject, KeyStart: keyStart, KeyEnd: keyEnd, ValStart: p})
		b.si++
		for {
			if b.si >= len(b.idx) {
				return 0, fmt.Errorf("tape: object at %d not closed", p)
			}
			q := b.idx[b.si]
			switch b.data[q] {
			case '}':
				b.si++
				b.out[self].ValEnd = q + 1
				b.out[self].Next = int32(len(b.out))
				return self, nil
			case ',':
				b.si++
				continue
			case '"':
				// member key: opening quote; closing quote is the next
				// indexed position (strings hide their metacharacters).
				if b.si+2 >= len(b.idx) {
					return 0, fmt.Errorf("tape: truncated member at %d", q)
				}
				closeQ := b.idx[b.si+1]
				colon := b.idx[b.si+2]
				if b.data[closeQ] != '"' || b.data[colon] != ':' {
					return 0, fmt.Errorf("tape: malformed member at %d", q)
				}
				b.si += 3
				if _, err := b.valueAfter(colon+1, q+1, closeQ); err != nil {
					return 0, err
				}
			default:
				return 0, fmt.Errorf("tape: unexpected %q in object at %d", b.data[q], q)
			}
		}
	case '[':
		b.out = append(b.out, Node{Kind: KindArray, KeyStart: keyStart, KeyEnd: keyEnd, ValStart: p})
		b.si++
		prev := p + 1 // input position just past the last separator
		for {
			if b.si >= len(b.idx) {
				return 0, fmt.Errorf("tape: array at %d not closed", p)
			}
			q := b.idx[b.si]
			switch b.data[q] {
			case ']', ',':
				// Any non-whitespace between the previous separator and
				// this one is a primitive element.
				if vs, ve := primitiveSpan(b.data, prev, q); vs < ve {
					idx := int32(len(b.out))
					b.out = append(b.out, Node{Kind: KindPrimitive, KeyStart: -1, KeyEnd: -1,
						ValStart: vs, ValEnd: ve, Next: idx + 1})
				}
				b.si++
				prev = q + 1
				if b.data[q] == ']' {
					b.out[self].ValEnd = q + 1
					b.out[self].Next = int32(len(b.out))
					return self, nil
				}
			case '{', '[', '"':
				child, err := b.value(-1, -1)
				if err != nil {
					return 0, err
				}
				prev = b.out[child].ValEnd
			default:
				return 0, fmt.Errorf("tape: unexpected %q in array at %d", b.data[q], q)
			}
		}
	case '"':
		if b.si+1 >= len(b.idx) || b.data[b.idx[b.si+1]] != '"' {
			return 0, fmt.Errorf("tape: unterminated string at %d", p)
		}
		closeQ := b.idx[b.si+1]
		b.si += 2
		b.out = append(b.out, Node{Kind: KindString, KeyStart: keyStart, KeyEnd: keyEnd,
			ValStart: p, ValEnd: closeQ + 1, Next: self + 1})
		return self, nil
	default:
		return 0, fmt.Errorf("tape: unexpected structural %q at %d", b.data[p], p)
	}
}

// valueAfter builds the value beginning after input position `from`
// (just past a ':'), attaching the key span.
func (b *builder) valueAfter(from, keyStart, keyEnd int32) (int32, error) {
	// The next indexed position either starts the value ('{', '[', '"')
	// or terminates a primitive (',', '}', ']').
	if b.si >= len(b.idx) {
		return 0, fmt.Errorf("tape: missing value at %d", from)
	}
	q := b.idx[b.si]
	switch b.data[q] {
	case '{', '[', '"':
		return b.value(keyStart, keyEnd)
	case ',', '}', ']':
		self := int32(len(b.out))
		vs, ve := primitiveSpan(b.data, from, q)
		if vs >= ve {
			return 0, fmt.Errorf("tape: empty value at %d", from)
		}
		b.out = append(b.out, Node{Kind: KindPrimitive, KeyStart: keyStart, KeyEnd: keyEnd,
			ValStart: vs, ValEnd: ve, Next: self + 1})
		return self, nil
	default:
		return 0, fmt.Errorf("tape: unexpected %q at %d", b.data[q], q)
	}
}

// primitiveSpan trims whitespace from [from, to).
func primitiveSpan(data []byte, from, to int32) (int32, int32) {
	for from < to && isWS(data[from]) {
		from++
	}
	for to > from && isWS(data[to-1]) {
		to--
	}
	return from, to
}

// Evaluator is a compiled query evaluated by index+tape traversal.
type Evaluator struct {
	steps []jsonpath.Step
}

// New compiles the evaluator for a path.
func New(p *jsonpath.Path) *Evaluator { return &Evaluator{steps: p.Steps} }

// Compile parses and compiles in one step.
func Compile(expr string) (*Evaluator, error) {
	p, err := jsonpath.Parse(expr)
	if err != nil {
		return nil, err
	}
	return New(p), nil
}

// Run indexes data, builds the tape, and traverses it; emit may be nil.
func (ev *Evaluator) Run(data []byte, emit func(start, end int)) (int64, error) {
	t, err := Preprocess(data)
	if err != nil {
		return 0, err
	}
	return ev.RunTape(t, emit)
}

// Preprocess runs both stages, returning the tape.
func Preprocess(data []byte) (*Tape, error) {
	return Build(data, BuildIndex(data))
}

// RunTape traverses an already-built tape (so benchmarks can separate
// preprocessing from querying).
func (ev *Evaluator) RunTape(t *Tape, emit func(start, end int)) (int64, error) {
	if len(t.Nodes) == 0 {
		return 0, nil
	}
	var count int64
	var rootDoc *domparser.Doc
	var walk func(n int32, q int)
	// Filters, unions, and descendants are not tape-native traversals;
	// such tails re-parse the (tape-delimited) value span through the
	// reference evaluator.
	refEval := func(node *Node, q int) {
		vs, ve := int(node.ValStart), int(node.ValEnd)
		d, err := domparser.ParseDoc(t.data[vs:ve])
		if err != nil {
			return
		}
		steps := ev.steps[q:]
		if jsonpath.StepsHaveAbsolute(steps) {
			if rootDoc == nil {
				root := &t.Nodes[0]
				rd, err := domparser.ParseDoc(t.data[root.ValStart:root.ValEnd])
				if err != nil {
					rd = &domparser.Doc{}
				}
				rootDoc = rd
			}
			d.Abs = rootDoc
		}
		d.EvalSpans(steps, func(s2, e2 int) {
			count++
			if emit != nil {
				emit(vs+s2, vs+e2)
			}
		})
	}
	walk = func(n int32, q int) {
		node := &t.Nodes[n]
		if q == len(ev.steps) {
			count++
			if emit != nil {
				emit(int(node.ValStart), int(node.ValEnd))
			}
			return
		}
		st := ev.steps[q]
		switch st.Kind {
		case jsonpath.Child:
			if node.Kind != KindObject {
				return
			}
			for c := n + 1; c < node.Next; c = t.Nodes[c].Next {
				k := t.Nodes[c]
				if k.KeyStart >= 0 && automaton.KeyEqual(t.data[k.KeyStart:k.KeyEnd], st.Name) {
					walk(c, q+1)
					return // keys are unique
				}
			}
		case jsonpath.Wildcard:
			if node.Kind != KindObject && node.Kind != KindArray {
				return
			}
			for c := n + 1; c < node.Next; c = t.Nodes[c].Next {
				walk(c, q+1)
			}
		case jsonpath.Index, jsonpath.Slice:
			if node.Kind != KindArray {
				return
			}
			var kids []int32
			for c := n + 1; c < node.Next; c = t.Nodes[c].Next {
				kids = append(kids, c)
			}
			if st.Kind == jsonpath.Index {
				idx := st.Lo
				if idx < 0 {
					idx += len(kids)
				}
				if idx >= 0 && idx < len(kids) {
					walk(kids[idx], q+1)
				}
				return
			}
			lo, hi, stride := st.SliceBounds(len(kids))
			if stride > 0 {
				for i := lo; i < hi; i += stride {
					walk(kids[i], q+1)
				}
			} else {
				for i := lo; i > hi; i += stride {
					walk(kids[i], q+1)
				}
			}
		default: // Filter, Union, Descendant
			refEval(node, q)
		}
	}
	walk(0, 0)
	return count, nil
}

// Count is Run without an emit callback.
func (ev *Evaluator) Count(data []byte) (int64, error) {
	return ev.Run(data, nil)
}
