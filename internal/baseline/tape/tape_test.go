package tape

import (
	"reflect"
	"strings"
	"testing"
)

func TestBuildIndexPositions(t *testing.T) {
	data := []byte(`{"a": [1, "x,y"], "b:c": 2}`)
	idx := BuildIndex(data)
	var got []byte
	for _, p := range idx {
		got = append(got, data[p])
	}
	// structural chars plus quote pairs; the comma and colon inside
	// strings are masked, the quotes themselves are indexed.
	want := `{"":[,""],"":}`
	if string(got) != want {
		t.Fatalf("indexed chars %q, want %q", got, want)
	}
}

func TestBuildTapeShape(t *testing.T) {
	data := []byte(`{"a": [1, {"b": 2}], "c": "str"}`)
	tp, err := Preprocess(data)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Nodes[0].Kind != KindObject {
		t.Fatalf("root kind = %v", tp.Nodes[0].Kind)
	}
	if tp.Nodes[0].Next != int32(len(tp.Nodes)) {
		t.Fatalf("root Next = %d, nodes = %d", tp.Nodes[0].Next, len(tp.Nodes))
	}
	// nodes: obj, a(array), 1, obj, 2, "str"(c)
	if len(tp.Nodes) != 6 {
		t.Fatalf("node count = %d: %+v", len(tp.Nodes), tp.Nodes)
	}
	if tp.FootprintBytes() <= 0 {
		t.Fatal("footprint should be positive")
	}
}

func TestQueries(t *testing.T) {
	data := `{"a": 1, "b": {"c": [10, 20, 30]}, "e": [{"f": 5}, {"f": 6}]}`
	cases := []struct {
		q    string
		want []string
	}{
		{"$.a", []string{"1"}},
		{"$.b.c[1]", []string{"20"}},
		{"$.b.c[*]", []string{"10", "20", "30"}},
		{"$.e[*].f", []string{"5", "6"}},
		{"$.e[1]", []string{`{"f": 6}`}},
		{"$", []string{data}},
		{"$.zzz", nil},
	}
	for _, c := range cases {
		ev, err := Compile(c.q)
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		if _, err := ev.Run([]byte(data), func(s, e int) { got = append(got, data[s:e]) }); err != nil {
			t.Fatalf("%s: %v", c.q, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: got %q want %q", c.q, got, c.want)
		}
	}
}

func TestPrimitiveElements(t *testing.T) {
	data := `[1, true, null, "s", 2.5]`
	ev, _ := Compile("$[*]")
	var got []string
	ev.Run([]byte(data), func(s, e int) { got = append(got, data[s:e]) })
	want := []string{"1", "true", "null", `"s"`, "2.5"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %q", got)
	}
}

func TestBarePrimitiveRecord(t *testing.T) {
	ev, _ := Compile("$")
	var got string
	data := "  42  "
	if _, err := ev.Run([]byte(data), func(s, e int) { got = data[s:e] }); err != nil {
		t.Fatal(err)
	}
	if got != "42" {
		t.Fatalf("got %q", got)
	}
}

func TestStringsAcrossWords(t *testing.T) {
	long := strings.Repeat("x,{}[]:", 40)
	data := `{"k": "` + long + `", "v": 7}`
	ev, _ := Compile("$.v")
	n, err := ev.Count([]byte(data))
	if err != nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestMalformed(t *testing.T) {
	ev, _ := Compile("$.a")
	for _, in := range []string{``, `   `, `{"a": `, `{"a"`, `[1, 2`, `{"a" 1}`} {
		if _, err := ev.Run([]byte(in), nil); err == nil {
			t.Errorf("expected error for %q", in)
		}
	}
}

func TestRunTapeReuse(t *testing.T) {
	data := []byte(`{"a": 1, "b": 2}`)
	tp, err := Preprocess(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"$.a", "$.b"} {
		ev, _ := Compile(q)
		n, err := ev.RunTape(tp, nil)
		if err != nil || n != 1 {
			t.Fatalf("%s: n=%d err=%v", q, n, err)
		}
	}
}
