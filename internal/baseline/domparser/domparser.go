// Package domparser is the RapidJSON-class baseline: the preprocessing
// scheme of paper §2, Figure 3-(a). It parses every record into an
// in-memory tree (a DOM) character by character, then evaluates path
// queries by traversing the tree. Its costs — an upfront parse of the
// whole input and memory proportional to the tree — are exactly the
// overheads the streaming scheme avoids, which Figures 10–14 quantify.
package domparser

import (
	"fmt"

	"jsonski/internal/jsonpath"
)

// Kind tags a DOM node.
type Kind uint8

// Node kinds.
const (
	KindObject Kind = iota
	KindArray
	KindString
	KindNumber
	KindBool
	KindNull
)

// Node is one value of the parsed tree. Keys and primitive bodies alias
// the input buffer (RapidJSON's in-situ mode), so the tree's own memory
// is the node and slice headers — still proportional to the input.
type Node struct {
	Kind     Kind
	Span     [2]int   // byte range of the value in the input
	Keys     [][]byte // object: raw key per child
	Children []*Node  // object/array
}

// Parser parses a buffer into a DOM.
type Parser struct {
	data []byte
	pos  int
}

// Parse builds the DOM for a single JSON record.
func Parse(data []byte) (*Node, error) {
	p := &Parser{data: data}
	p.skipWS()
	if p.pos >= len(data) {
		return nil, fmt.Errorf("domparser: empty input")
	}
	n, err := p.value()
	if err != nil {
		return nil, err
	}
	return n, nil
}

func (p *Parser) skipWS() {
	for p.pos < len(p.data) {
		switch p.data[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *Parser) value() (*Node, error) {
	switch p.data[p.pos] {
	case '{':
		return p.object()
	case '[':
		return p.array()
	case '"':
		start := p.pos
		if err := p.skipString(); err != nil {
			return nil, err
		}
		return &Node{Kind: KindString, Span: [2]int{start, p.pos}}, nil
	default:
		return p.primitive()
	}
}

func (p *Parser) object() (*Node, error) {
	n := &Node{Kind: KindObject}
	start := p.pos
	p.pos++ // '{'
	for {
		p.skipWS()
		if p.pos >= len(p.data) {
			return nil, fmt.Errorf("domparser: EOF inside object")
		}
		switch p.data[p.pos] {
		case '}':
			p.pos++
			n.Span = [2]int{start, p.pos}
			return n, nil
		case ',':
			p.pos++
			continue
		case '"':
		default:
			return nil, fmt.Errorf("domparser: expected key at %d", p.pos)
		}
		keyStart := p.pos
		if err := p.skipString(); err != nil {
			return nil, err
		}
		key := p.data[keyStart+1 : p.pos-1]
		p.skipWS()
		if p.pos >= len(p.data) || p.data[p.pos] != ':' {
			return nil, fmt.Errorf("domparser: expected ':' at %d", p.pos)
		}
		p.pos++
		p.skipWS()
		if p.pos >= len(p.data) {
			return nil, fmt.Errorf("domparser: missing value at %d", p.pos)
		}
		child, err := p.value()
		if err != nil {
			return nil, err
		}
		n.Keys = append(n.Keys, key)
		n.Children = append(n.Children, child)
	}
}

func (p *Parser) array() (*Node, error) {
	n := &Node{Kind: KindArray}
	start := p.pos
	p.pos++ // '['
	for {
		p.skipWS()
		if p.pos >= len(p.data) {
			return nil, fmt.Errorf("domparser: EOF inside array")
		}
		switch p.data[p.pos] {
		case ']':
			p.pos++
			n.Span = [2]int{start, p.pos}
			return n, nil
		case ',':
			p.pos++
			continue
		}
		child, err := p.value()
		if err != nil {
			return nil, err
		}
		n.Children = append(n.Children, child)
	}
}

func (p *Parser) skipString() error {
	p.pos++
	for p.pos < len(p.data) {
		switch p.data[p.pos] {
		case '\\':
			p.pos += 2
		case '"':
			p.pos++
			return nil
		default:
			p.pos++
		}
	}
	return fmt.Errorf("domparser: unterminated string")
}

func (p *Parser) primitive() (*Node, error) {
	start := p.pos
	kind := KindNumber
	switch p.data[p.pos] {
	case 't', 'f':
		kind = KindBool
	case 'n':
		kind = KindNull
	}
loop:
	for p.pos < len(p.data) {
		switch p.data[p.pos] {
		case ',', '}', ']', ' ', '\t', '\n', '\r':
			break loop
		default:
			p.pos++
		}
	}
	if p.pos == start {
		return nil, fmt.Errorf("domparser: empty value at %d", start)
	}
	return &Node{Kind: kind, Span: [2]int{start, p.pos}}, nil
}

// Evaluator is a compiled query evaluated by parse-then-traverse.
type Evaluator struct {
	steps []jsonpath.Step
}

// New compiles the evaluator for a path.
func New(p *jsonpath.Path) *Evaluator { return &Evaluator{steps: p.Steps} }

// Compile parses and compiles in one step.
func Compile(expr string) (*Evaluator, error) {
	p, err := jsonpath.Parse(expr)
	if err != nil {
		return nil, err
	}
	return New(p), nil
}

// Run parses data into a DOM and traverses it with the reference
// evaluator (refeval.go), invoking emit (which may be nil) per match;
// it returns the match count.
func (ev *Evaluator) Run(data []byte, emit func(start, end int)) (int64, error) {
	d, err := ParseDoc(data)
	if err != nil {
		return 0, err
	}
	var count int64
	d.Eval(ev.steps, func(n *Node) {
		count++
		if emit != nil {
			emit(n.Span[0], n.Span[1])
		}
	})
	return count, nil
}

// Count is Run without an emit callback.
func (ev *Evaluator) Count(data []byte) (int64, error) {
	return ev.Run(data, nil)
}

// FootprintBytes estimates the heap the parse tree pins beyond the input
// buffer, for the memory-overhead experiment (Figure 13): one Node plus
// slice headers per value, key headers per member.
func (n *Node) FootprintBytes() int64 {
	const nodeSize = 8 + 16 + 24 + 24 + 8 // kind+span, keys hdr, children hdr, pointer
	total := int64(nodeSize)
	total += int64(len(n.Keys)) * 24
	total += int64(len(n.Children)) * 8
	for _, c := range n.Children {
		total += c.FootprintBytes()
	}
	return total
}
