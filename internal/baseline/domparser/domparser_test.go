package domparser

import (
	"reflect"
	"testing"
)

func TestParseTree(t *testing.T) {
	root, err := Parse([]byte(`{"a": [1, "two", {"b": null}], "c": true}`))
	if err != nil {
		t.Fatal(err)
	}
	if root.Kind != KindObject || len(root.Children) != 2 {
		t.Fatalf("root = %+v", root)
	}
	if string(root.Keys[0]) != "a" || string(root.Keys[1]) != "c" {
		t.Fatalf("keys = %q", root.Keys)
	}
	arr := root.Children[0]
	if arr.Kind != KindArray || len(arr.Children) != 3 {
		t.Fatalf("arr = %+v", arr)
	}
	if arr.Children[0].Kind != KindNumber ||
		arr.Children[1].Kind != KindString ||
		arr.Children[2].Kind != KindObject {
		t.Fatalf("element kinds wrong: %+v", arr.Children)
	}
	if root.Children[1].Kind != KindBool {
		t.Fatalf("c kind = %v", root.Children[1].Kind)
	}
	inner := arr.Children[2]
	if inner.Children[0].Kind != KindNull {
		t.Fatalf("b kind = %v", inner.Children[0].Kind)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{``, `   `, `{`, `[1,`, `{"a"}`, `{"a":}`, `{"a": "x`, `{1:2}`}
	for _, in := range bad {
		if _, err := Parse([]byte(in)); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestQueries(t *testing.T) {
	data := `{"a": 1, "b": {"c": [10, 20, 30]}, "e": [{"f": 5}, {"f": 6}]}`
	cases := []struct {
		q    string
		want []string
	}{
		{"$.a", []string{"1"}},
		{"$.b.c[0:2]", []string{"10", "20"}},
		{"$.e[*].f", []string{"5", "6"}},
		{"$", []string{data}},
		{"$.missing", nil},
		{"$.a[0]", nil},
	}
	for _, c := range cases {
		ev, err := Compile(c.q)
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		if _, err := ev.Run([]byte(data), func(s, e int) { got = append(got, data[s:e]) }); err != nil {
			t.Fatalf("%s: %v", c.q, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: got %q want %q", c.q, got, c.want)
		}
	}
}

func TestCount(t *testing.T) {
	ev, _ := Compile("$[*]")
	n, err := ev.Count([]byte(`[1,2,3,{"x":[4]}]`))
	if err != nil || n != 4 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestSpanIncludesWholeValue(t *testing.T) {
	data := `{"a":  {"nested": [1, 2]}  }`
	ev, _ := Compile("$.a")
	var got string
	ev.Run([]byte(data), func(s, e int) { got = data[s:e] })
	if got != `{"nested": [1, 2]}` {
		t.Fatalf("got %q", got)
	}
}
