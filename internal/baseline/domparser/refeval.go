// The reference evaluator: full RFC 9535 semantics over the parsed DOM.
// Besides serving the baseline Evaluator, this is the semantic oracle
// the streaming engines defer to — the DFA's full-parse filter probes,
// the segmented evaluator's non-streamable tails, and the compliance +
// differential test harnesses all walk values through Doc.Eval/Holds,
// so a selector means the same thing on every path through the system.
//
// Emission order is document order for name, index, slice, wildcard,
// and filter selectors. Union segments emit per-selector in selector
// order (RFC 9535 §2.5.1), backward slices emit in reverse index order
// (§2.3.4.2.2), and descendant segments apply their selectors to each
// visited node before recursing into its children in document order
// (§2.5.2 leaves descendant ordering to the implementation). Harnesses
// comparing engines across descendant or union queries should compare
// sorted span sets.
package domparser

import (
	"jsonski/internal/automaton"
	"jsonski/internal/jsonpath"
)

// Doc pairs a parsed DOM with the buffer it was parsed from. Abs, when
// non-nil, is the document that absolute ($) references inside filter
// expressions resolve against — a Doc built for a candidate span inside
// a larger record points Abs at the record's Doc; nil means this Doc is
// the document root.
type Doc struct {
	Data []byte
	Root *Node
	Abs  *Doc
}

// ParseDoc parses a buffer into a Doc rooted at its single value.
func ParseDoc(data []byte) (*Doc, error) {
	root, err := Parse(data)
	if err != nil {
		return nil, err
	}
	return &Doc{Data: data, Root: root}, nil
}

func (d *Doc) abs() *Doc {
	if d.Abs != nil {
		return d.Abs
	}
	return d
}

// Eval applies a step list to the document root, invoking emit for each
// selected node.
func (d *Doc) Eval(steps []jsonpath.Step, emit func(n *Node)) {
	d.eval(d.Root, steps, emit)
}

// EvalSpans is Eval reporting byte spans instead of nodes.
func (d *Doc) EvalSpans(steps []jsonpath.Step, emit func(start, end int)) {
	d.eval(d.Root, steps, func(n *Node) { emit(n.Span[0], n.Span[1]) })
}

func (d *Doc) eval(n *Node, steps []jsonpath.Step, emit func(*Node)) {
	if n == nil {
		return // absent document root (absolute reference with no record)
	}
	if len(steps) == 0 {
		emit(n)
		return
	}
	d.evalStep(n, steps[0], steps[1:], emit)
}

// evalStep applies one selector to node n, continuing with rest on each
// selected child.
func (d *Doc) evalStep(n *Node, st jsonpath.Step, rest []jsonpath.Step, emit func(*Node)) {
	switch st.Kind {
	case jsonpath.Child:
		if n.Kind != KindObject {
			return
		}
		for i, k := range n.Keys {
			if automaton.KeyEqual(k, st.Name) {
				d.eval(n.Children[i], rest, emit)
				return // attribute names are unique
			}
		}
	case jsonpath.Index:
		if n.Kind != KindArray {
			return
		}
		idx := st.Lo
		if idx < 0 {
			idx += len(n.Children)
		}
		if idx >= 0 && idx < len(n.Children) {
			d.eval(n.Children[idx], rest, emit)
		}
	case jsonpath.Slice:
		if n.Kind != KindArray {
			return
		}
		lo, hi, stride := st.SliceBounds(len(n.Children))
		if stride > 0 {
			for i := lo; i < hi; i += stride {
				d.eval(n.Children[i], rest, emit)
			}
		} else {
			for i := lo; i > hi; i += stride {
				d.eval(n.Children[i], rest, emit)
			}
		}
	case jsonpath.Wildcard:
		if n.Kind != KindObject && n.Kind != KindArray {
			return
		}
		for _, c := range n.Children {
			d.eval(c, rest, emit)
		}
	case jsonpath.Filter:
		if n.Kind != KindObject && n.Kind != KindArray {
			return
		}
		for _, c := range n.Children {
			if d.Holds(st.Filter, c) {
				d.eval(c, rest, emit)
			}
		}
	case jsonpath.Union:
		for _, sel := range st.Sel {
			d.evalStep(n, sel, rest, emit)
		}
	case jsonpath.Descendant:
		d.descend(n, st, rest, emit)
	}
}

// descend applies a descendant segment: its selectors run against every
// node of the subtree rooted at n, pre-order, children in document
// order.
func (d *Doc) descend(n *Node, st jsonpath.Step, rest []jsonpath.Step, emit func(*Node)) {
	for _, sel := range st.Sel {
		d.evalStep(n, sel, rest, emit)
	}
	for _, c := range n.Children {
		if c.Kind == KindObject || c.Kind == KindArray {
			d.descend(c, st, rest, emit)
		}
	}
}

// Holds evaluates a filter expression with candidate node n (RFC 9535
// §2.3.5.2): existence tests are true iff the embedded query selects at
// least one node, comparisons resolve singular queries to values or
// Nothing and apply jsonpath.Compare.
func (d *Doc) Holds(f *jsonpath.FilterExpr, n *Node) bool {
	switch f.Op {
	case jsonpath.FilterOr:
		for _, k := range f.Kids {
			if d.Holds(k, n) {
				return true
			}
		}
		return false
	case jsonpath.FilterAnd:
		for _, k := range f.Kids {
			if !d.Holds(k, n) {
				return false
			}
		}
		return true
	case jsonpath.FilterNot:
		return !d.Holds(f.Kids[0], n)
	case jsonpath.FilterCompare:
		return jsonpath.Compare(f.Cmp, d.operand(f.Left, n), d.operand(f.Right, n))
	default: // FilterExists
		return d.exists(f.Query, n)
	}
}

// queryBase resolves which document and start node an embedded query
// walks from: the candidate for `@`, the document root for `$`.
func (d *Doc) queryBase(q *jsonpath.SubQuery, n *Node) (*Doc, *Node) {
	if q.Absolute {
		ad := d.abs()
		return ad, ad.Root
	}
	return d, n
}

func (d *Doc) exists(q *jsonpath.SubQuery, n *Node) bool {
	base, start := d.queryBase(q, n)
	found := false
	base.eval(start, q.Path.Steps, func(*Node) { found = true })
	return found
}

func (d *Doc) operand(o jsonpath.Operand, n *Node) jsonpath.CmpVal {
	if o.IsLiteral {
		return jsonpath.LitVal(o.Lit)
	}
	return d.singular(o.Query, n)
}

// singular resolves a singular query (child/index steps only) to the
// selected value, or Nothing when any step fails to select.
func (d *Doc) singular(q *jsonpath.SubQuery, n *Node) jsonpath.CmpVal {
	base, cur := d.queryBase(q, n)
	if cur == nil {
		return jsonpath.CmpVal{Missing: true}
	}
	for _, st := range q.Path.Steps {
		switch st.Kind {
		case jsonpath.Child:
			if cur.Kind != KindObject {
				return jsonpath.CmpVal{Missing: true}
			}
			next := (*Node)(nil)
			for i, k := range cur.Keys {
				if automaton.KeyEqual(k, st.Name) {
					next = cur.Children[i]
					break
				}
			}
			if next == nil {
				return jsonpath.CmpVal{Missing: true}
			}
			cur = next
		case jsonpath.Index:
			if cur.Kind != KindArray {
				return jsonpath.CmpVal{Missing: true}
			}
			idx := st.Lo
			if idx < 0 {
				idx += len(cur.Children)
			}
			if idx < 0 || idx >= len(cur.Children) {
				return jsonpath.CmpVal{Missing: true}
			}
			cur = cur.Children[idx]
		default:
			return jsonpath.CmpVal{Missing: true}
		}
	}
	return jsonpath.DecodeValue(base.Data[cur.Span[0]:cur.Span[1]])
}
