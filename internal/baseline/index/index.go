// Package index is the Pison/Mison-class baseline: structural-index
// preprocessing (paper §2, Figure 3-(b)). Before any query runs, it
// builds *leveled bitmaps* — one colon bitmap and one comma bitmap per
// nesting level up to the query's depth — with the same SWAR substrate as
// JSONSki. Queries then navigate the bitmaps: colons locate object
// attributes, commas separate array elements, and value spans fall out of
// the separator positions.
//
// Like Pison, the index can be constructed speculatively in parallel
// chunks (see parallel.go), but the whole input must be indexed before
// the first result is produced, and the bitmaps pin 2·L·n/8 bytes of
// memory — the contrast to streaming measured in Figures 10–14.
package index

import (
	"fmt"

	"jsonski/internal/automaton"
	"jsonski/internal/baseline/domparser"
	"jsonski/internal/bits"
	"jsonski/internal/jsonpath"
)

// Index is the leveled-bitmap structural index of one record.
type Index struct {
	data   []byte
	levels int
	words  int
	// colons[l] and commas[l] mark ':' / ',' at nesting level l
	// (level 0 = inside the root container).
	colons [][]uint64
	commas [][]uint64
}

// Levels returns the number of indexed levels.
func (ix *Index) Levels() int { return ix.levels }

// FootprintBytes reports the memory the bitmaps pin (Figure 13).
func (ix *Index) FootprintBytes() int64 {
	return int64(2 * ix.levels * ix.words * 8)
}

// Build constructs the leveled bitmaps for `levels` nesting levels.
func Build(data []byte, levels int) (*Index, error) {
	if levels < 1 {
		levels = 1
	}
	words := (len(data) + bits.WordSize - 1) / bits.WordSize
	ix := &Index{data: data, levels: levels, words: words}
	ix.colons = make([][]uint64, levels)
	ix.commas = make([][]uint64, levels)
	buf := make([]uint64, 2*levels*words) // one allocation for all levels
	for l := 0; l < levels; l++ {
		ix.colons[l] = buf[2*l*words : (2*l+1)*words]
		ix.commas[l] = buf[(2*l+1)*words : (2*l+2)*words]
	}
	var blk bits.Block
	var ec bits.EscapeCarry
	var sc bits.StringCarry
	depth := -1 // becomes 0 when the root '{'/'[' opens
	for w := 0; w < words; w++ {
		base := w * bits.WordSize
		end := base + bits.WordSize
		if end > len(data) {
			end = len(data)
		}
		blk.Load(data[base:end])
		escaped := ec.Escaped(blk.EqMask('\\'))
		quotes := blk.EqMask('"') &^ escaped
		inStr := sc.InStringMask(quotes)
		var err error
		depth, err = ix.scatterWord(&blk, inStr, w, depth)
		if err != nil {
			return nil, err
		}
	}
	if depth != -1 {
		return nil, fmt.Errorf("index: unbalanced input (final depth %d)", depth+1)
	}
	return ix, nil
}

// scatterWord distributes one word's structural bits into the per-level
// bitmaps, tracking the nesting depth across the word.
func (ix *Index) scatterWord(blk *bits.Block, inStr uint64, w, depth int) (int, error) {
	opens := (blk.EqMask('{') | blk.EqMask('[')) &^ inStr
	closes := (blk.EqMask('}') | blk.EqMask(']')) &^ inStr
	colons := blk.EqMask(':') &^ inStr
	commas := blk.EqMask(',') &^ inStr
	// Fast path: when the whole word sits on one level, colon/comma bits
	// transfer in bulk without per-bit iteration.
	if opens|closes == 0 {
		if depth >= 0 && depth < ix.levels {
			ix.colons[depth][w] |= colons
			ix.commas[depth][w] |= commas
		}
		return depth, nil
	}
	all := opens | closes | colons | commas
	for all != 0 {
		p := uint(bits.TrailingZeros(all))
		bit := uint64(1) << p
		all &= all - 1
		switch {
		case opens&bit != 0:
			depth++
		case closes&bit != 0:
			depth--
			if depth < -1 {
				return depth, fmt.Errorf("index: extra closer at %d", w*bits.WordSize+int(p))
			}
		case colons&bit != 0:
			if depth >= 0 && depth < ix.levels {
				ix.colons[depth][w] |= bit
			}
		default:
			if depth >= 0 && depth < ix.levels {
				ix.commas[depth][w] |= bit
			}
		}
	}
	return depth, nil
}

// bitsInRange iterates the set bits of bitmap within [from, to),
// invoking fn with each absolute position; fn returning false stops.
func bitsInRange(bitmap []uint64, from, to int, fn func(pos int) bool) {
	if from >= to {
		return
	}
	wFrom := from / bits.WordSize
	wTo := (to - 1) / bits.WordSize
	for w := wFrom; w <= wTo && w < len(bitmap); w++ {
		m := bitmap[w]
		if w == wFrom {
			m = bits.ClearBelow(m, uint(from%bits.WordSize))
		}
		if w == wTo {
			if r := uint(to - w*bits.WordSize); r < bits.WordSize {
				m &= uint64(1)<<r - 1
			}
		}
		for m != 0 {
			if !fn(w*bits.WordSize + bits.TrailingZeros(m)) {
				return
			}
			m &= m - 1
		}
	}
}

// Evaluator is a compiled query evaluated over a leveled-bitmap index.
type Evaluator struct {
	steps []jsonpath.Step
}

// New compiles the evaluator for a path.
func New(p *jsonpath.Path) *Evaluator { return &Evaluator{steps: p.Steps} }

// Compile parses and compiles in one step.
func Compile(expr string) (*Evaluator, error) {
	p, err := jsonpath.Parse(expr)
	if err != nil {
		return nil, err
	}
	return New(p), nil
}

// Levels returns the index depth the query needs.
func (ev *Evaluator) Levels() int {
	if len(ev.steps) == 0 {
		return 1
	}
	return len(ev.steps)
}

// Run builds the index and evaluates; emit may be nil.
func (ev *Evaluator) Run(data []byte, emit func(start, end int)) (int64, error) {
	ix, err := Build(data, ev.Levels())
	if err != nil {
		return 0, err
	}
	return ev.RunIndex(ix, emit)
}

// Count is Run without an emit callback.
func (ev *Evaluator) Count(data []byte) (int64, error) {
	return ev.Run(data, nil)
}

// RunIndex evaluates over a prebuilt index (so benchmarks can separate
// construction from querying).
func (ev *Evaluator) RunIndex(ix *Index, emit func(start, end int)) (int64, error) {
	data := ix.data
	s := skipWS(data, 0)
	if s >= len(data) {
		return 0, fmt.Errorf("index: empty input")
	}
	e := lastNonWS(data) + 1
	var count int64
	if len(ev.steps) == 0 {
		count++
		if emit != nil {
			emit(s, e)
		}
		return count, nil
	}
	// Filters, unions, descendants, and backward slices are outside what
	// the leveled bitmaps model; such tails are deferred to the reference
	// evaluator over the (already index-delimited) value span.
	var rootDoc *domparser.Doc
	var walk func(vs, ve, level, q int)
	refEval := func(vs, ve, q int) {
		end := trimEnd(data, vs, ve)
		d, err := domparser.ParseDoc(data[vs:end])
		if err != nil {
			return
		}
		steps := ev.steps[q:]
		if jsonpath.StepsHaveAbsolute(steps) {
			if rootDoc == nil {
				rd, err := domparser.ParseDoc(data[s:e])
				if err != nil {
					rd = &domparser.Doc{}
				}
				rootDoc = rd
			}
			d.Abs = rootDoc
		}
		d.EvalSpans(steps, func(s2, e2 int) {
			count++
			if emit != nil {
				emit(vs+s2, vs+e2)
			}
		})
	}
	walk = func(vs, ve, level, q int) {
		vs = skipWS(data, vs)
		if vs >= ve {
			return
		}
		if q == len(ev.steps) {
			count++
			if emit != nil {
				emit(vs, trimEnd(data, vs, ve))
			}
			return
		}
		st := ev.steps[q]
		close := trimEnd(data, vs, ve) - 1 // position of '}' / ']'
		switch st.Kind {
		case jsonpath.Child:
			if data[vs] != '{' || level >= ix.levels {
				return
			}
			ev.object(ix, vs, close, level, st, walk, q)
		case jsonpath.Index, jsonpath.Slice:
			if !st.Streamable() {
				refEval(vs, ve, q)
				return
			}
			if data[vs] != '[' || level >= ix.levels {
				return
			}
			ev.array(ix, vs, close, level, st, walk, q)
		case jsonpath.Wildcard:
			if level >= ix.levels {
				return
			}
			switch data[vs] {
			case '{':
				ev.object(ix, vs, close, level, st, walk, q)
			case '[':
				ev.array(ix, vs, close, level, st, walk, q)
			}
		default: // Filter, Union, Descendant
			refEval(vs, ve, q)
		}
	}
	walk(s, e, 0, 0)
	return count, nil
}

// object scans the colons of the object opening at vs and closing at
// `close` (the '}' position) at nesting level `level`.
func (ev *Evaluator) object(ix *Index, vs, close, level int, st jsonpath.Step, walk func(int, int, int, int), q int) {
	data := ix.data
	// Collect colon positions, then derive each value's end from the
	// following comma (or the object end).
	prevColon := -1
	matchedPrev := false
	emitPrev := func(end int) {
		if prevColon >= 0 && matchedPrev {
			walk(prevColon+1, end, level+1, q+1)
		}
	}
	done := false
	bitsInRange(ix.colons[level], vs+1, close, func(colon int) bool {
		// The previous attribute's value ends at the comma before this
		// colon's key; find it from the comma bitmap.
		if prevColon >= 0 {
			end := prevColon
			bitsInRange(ix.commas[level], prevColon+1, close, func(comma int) bool {
				end = comma
				return false
			})
			if end <= prevColon { // no comma found (malformed)
				end = close
			}
			emitPrev(end)
			if matchedPrev && st.Kind == jsonpath.Child {
				done = true
				return false // attribute names are unique
			}
		}
		key := keyBefore(data, colon)
		matchedPrev = st.Kind == jsonpath.Wildcard ||
			(key != nil && automaton.KeyEqual(key, st.Name))
		prevColon = colon
		return true
	})
	if !done {
		emitPrev(close)
	}
}

// array walks the commas of the array opening at vs and closing at
// `close` (the ']' position) at nesting level `level`.
func (ev *Evaluator) array(ix *Index, vs, close, level int, st jsonpath.Step, walk func(int, int, int, int), q int) {
	wild := st.Kind == jsonpath.Wildcard
	selects := func(i int) bool { return wild || automaton.IndexMatches(st, i) }
	idx := 0
	prev := vs + 1
	bitsInRange(ix.commas[level], vs+1, close, func(comma int) bool {
		if selects(idx) {
			walk(prev, comma, level+1, q+1)
		}
		idx++
		prev = comma + 1
		return wild || idx < st.Hi // past the range: stop scanning
	})
	if selects(idx) {
		// Final element (no trailing comma), if non-empty.
		s2 := skipWS(ix.data, prev)
		if s2 < close {
			walk(prev, close, level+1, q+1)
		}
	}
}

// keyBefore extracts the attribute name whose colon sits at `colon`,
// scanning backwards over the (short) key string.
func keyBefore(data []byte, colon int) []byte {
	i := colon - 1
	for i >= 0 && isWS(data[i]) {
		i--
	}
	if i < 0 || data[i] != '"' {
		return nil
	}
	close := i
	i--
	for i >= 0 {
		if data[i] == '"' && !escapedAt(data, i) {
			return data[i+1 : close]
		}
		i--
	}
	return nil
}

// escapedAt reports whether data[i] is escaped by a backslash run.
func escapedAt(data []byte, i int) bool {
	n := 0
	for j := i - 1; j >= 0 && data[j] == '\\'; j-- {
		n++
	}
	return n%2 == 1
}

func skipWS(data []byte, i int) int {
	for i < len(data) && isWS(data[i]) {
		i++
	}
	return i
}

func lastNonWS(data []byte) int {
	i := len(data) - 1
	for i >= 0 && isWS(data[i]) {
		i--
	}
	return i
}

func trimEnd(data []byte, s, e int) int {
	for e > s && isWS(data[e-1]) {
		e--
	}
	return e
}

func isWS(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
