package index

import (
	"fmt"
	"sync"
	"sync/atomic"

	"jsonski/internal/bits"
)

// This file implements Pison-style speculative parallel construction of
// the leveled bitmaps (paper §2 and Table 3: Pison's "Speculative
// Parallelism"). The input is cut into word-aligned chunks:
//
//	A. (parallel) each chunk runs the SWAR classification pipeline
//	   assuming it starts with no pending escape, recording for BOTH
//	   possible string polarities the open/close counts and the
//	   resulting end state (speculation on the string state);
//	B. (serial, O(#chunks)) escape carries, string polarities, and
//	   absolute depths are stitched; a chunk whose escape-carry guess
//	   was wrong — its first byte is escaped by the previous chunk —
//	   is re-scanned with the corrected carry (the misspeculation
//	   penalty; rare in practice);
//	C. (parallel) each chunk re-runs the pipeline with its now-known
//	   start state and scatters colon/comma bits into the shared
//	   per-level bitmap words. Chunks are word-aligned, so their
//	   writes never touch the same word.
type chunkInfo struct {
	// per string-polarity (index 0: starts outside a string):
	depthDelta [2]int
	endInStr   [2]bool
	// escape-carry bookkeeping
	trailRun int  // length of the backslash run ending at the chunk end
	trailAll bool // the whole chunk is backslashes
}

// analyzeChunk runs phase A over data[lo:hi) with the given escape carry.
func analyzeChunk(data []byte, lo, hi int, escIn bool) chunkInfo {
	var ci chunkInfo
	var blk bits.Block
	ec := bits.EscapeCarry{}
	if escIn {
		ec = escapeCarrySeeded()
	}
	var sc0 bits.StringCarry // polarity 0; polarity 1 is its inversion
	for base := lo; base < hi; base += bits.WordSize {
		end := base + bits.WordSize
		if end > hi {
			end = hi
		}
		blk.Load(data[base:end])
		escaped := ec.Escaped(blk.EqMask('\\'))
		quotes := blk.EqMask('"') &^ escaped
		inStr := sc0.InStringMask(quotes)
		// Mask off padding bits beyond the chunk for counting.
		valid := ^uint64(0)
		if n := end - base; n < bits.WordSize {
			valid = uint64(1)<<uint(n) - 1
		}
		opens := (blk.EqMask('{') | blk.EqMask('[')) & valid
		closes := (blk.EqMask('}') | blk.EqMask(']')) & valid
		ci.depthDelta[0] += bits.OnesCount(opens&^inStr) - bits.OnesCount(closes&^inStr)
		ci.depthDelta[1] += bits.OnesCount(opens&inStr) - bits.OnesCount(closes&inStr)
	}
	ci.endInStr[0] = sc0Ended(&sc0)
	ci.endInStr[1] = !ci.endInStr[0]
	// Trailing backslash run (for the escape carry hand-off).
	i := hi - 1
	for i >= lo && data[i] == '\\' {
		i--
	}
	ci.trailRun = hi - 1 - i
	ci.trailAll = i < lo
	return ci
}

// escapeCarrySeeded returns an EscapeCarry whose "previous byte escapes
// the first byte" flag is set.
func escapeCarrySeeded() bits.EscapeCarry {
	var ec bits.EscapeCarry
	// A single backslash in the last bit position leaves the carry set.
	ec.Escaped(1 << 63)
	return ec
}

func sc0Ended(sc *bits.StringCarry) bool {
	// StringCarry has no getter; probing with an empty word returns the
	// current polarity as bit 0 of the mask.
	m := sc.InStringMask(0)
	return m&1 != 0
}

// ParallelBuild constructs the same index as Build using `workers`
// goroutines and string-state speculation.
func ParallelBuild(data []byte, levels, workers int) (*Index, error) {
	if levels < 1 {
		levels = 1
	}
	words := (len(data) + bits.WordSize - 1) / bits.WordSize
	if workers <= 1 || words < 8 {
		return Build(data, levels)
	}
	nChunks := workers * 4
	if nChunks > words {
		nChunks = words
	}
	// Word-aligned chunk bounds.
	bounds := make([]int, nChunks+1)
	for i := 0; i <= nChunks; i++ {
		w := words * i / nChunks
		bounds[i] = w * bits.WordSize
	}
	bounds[nChunks] = len(data)

	// Phase A.
	infos := make([]chunkInfo, nChunks)
	parallelFor(nChunks, workers, func(i int) {
		infos[i] = analyzeChunk(data, bounds[i], bounds[i+1], false)
	})

	// Phase B: stitch escape carries, polarities, depths.
	escIn := make([]bool, nChunks)
	polarity := make([]int, nChunks)
	startDepth := make([]int, nChunks)
	esc := false
	inStr := false
	depth := -1
	for i := 0; i < nChunks; i++ {
		escIn[i] = esc
		if esc {
			// Misspeculation: redo phase A with the corrected carry.
			infos[i] = analyzeChunk(data, bounds[i], bounds[i+1], true)
		}
		p := 0
		if inStr {
			p = 1
		}
		polarity[i] = p
		startDepth[i] = depth
		depth += infos[i].depthDelta[p]
		inStr = infos[i].endInStr[p]
		// Escape carry out of this chunk.
		run := infos[i].trailRun
		if infos[i].trailAll && esc {
			run-- // the first backslash was itself escaped
		}
		esc = run%2 == 1
	}

	// Phase C: scatter per chunk with known start states.
	ix := &Index{data: data, levels: levels, words: words}
	ix.colons = make([][]uint64, levels)
	ix.commas = make([][]uint64, levels)
	buf := make([]uint64, 2*levels*words)
	for l := 0; l < levels; l++ {
		ix.colons[l] = buf[2*l*words : (2*l+1)*words]
		ix.commas[l] = buf[(2*l+1)*words : (2*l+2)*words]
	}
	var firstErr atomic.Value
	parallelFor(nChunks, workers, func(i int) {
		if err := ix.scatterChunk(bounds[i], bounds[i+1], escIn[i], polarity[i] == 1, startDepth[i]); err != nil {
			firstErr.CompareAndSwap(nil, err)
		}
	})
	if v := firstErr.Load(); v != nil {
		return nil, v.(error)
	}
	if depth != -1 {
		return nil, errUnbalanced(depth)
	}
	return ix, nil
}

func errUnbalanced(depth int) error {
	return fmt.Errorf("index: unbalanced input (final depth %d)", depth+1)
}

// scatterChunk is phase C for one chunk.
func (ix *Index) scatterChunk(lo, hi int, escIn, inStrIn bool, depth int) error {
	var blk bits.Block
	ec := bits.EscapeCarry{}
	if escIn {
		ec = escapeCarrySeeded()
	}
	var sc bits.StringCarry
	if inStrIn {
		sc.InStringMask(1) // flip polarity to "inside a string"
	}
	for base := lo; base < hi; base += bits.WordSize {
		end := base + bits.WordSize
		if end > hi {
			end = hi
		}
		blk.Load(ix.data[base:end])
		escaped := ec.Escaped(blk.EqMask('\\'))
		quotes := blk.EqMask('"') &^ escaped
		inStr := sc.InStringMask(quotes)
		var err error
		depth, err = ix.scatterWord(&blk, inStr, base/bits.WordSize, depth)
		if err != nil {
			return err
		}
	}
	return nil
}

// parallelFor runs fn(0..n-1) across `workers` goroutines.
func parallelFor(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
