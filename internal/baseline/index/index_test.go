package index

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestBuildLeveledBitmaps(t *testing.T) {
	data := []byte(`{"a": {"b": 1, "c": [2, 3]}, "d": 4}`)
	ix, err := Build(data, 3)
	if err != nil {
		t.Fatal(err)
	}
	count := func(bm []uint64) int {
		n := 0
		bitsInRange(bm, 0, len(data), func(int) bool { n++; return true })
		return n
	}
	// level 0: colons of "a" and "d"; one comma between them
	if got := count(ix.colons[0]); got != 2 {
		t.Errorf("level-0 colons = %d, want 2", got)
	}
	if got := count(ix.commas[0]); got != 1 {
		t.Errorf("level-0 commas = %d, want 1", got)
	}
	// level 1: colons of "b" and "c"; one comma
	if got := count(ix.colons[1]); got != 2 {
		t.Errorf("level-1 colons = %d, want 2", got)
	}
	// level 2: the comma inside [2, 3]
	if got := count(ix.commas[2]); got != 1 {
		t.Errorf("level-2 commas = %d, want 1", got)
	}
	if ix.FootprintBytes() <= 0 || ix.Levels() != 3 {
		t.Error("metadata accessors broken")
	}
}

func TestQueries(t *testing.T) {
	data := `{"a": 1, "b": {"c": [10, 20, 30]}, "e": [{"f": 5}, {"f": 6}]}`
	cases := []struct {
		q    string
		want []string
	}{
		{"$.a", []string{"1"}},
		{"$.b.c[1]", []string{"20"}},
		{"$.b.c[0:2]", []string{"10", "20"}},
		{"$.b.c[*]", []string{"10", "20", "30"}},
		{"$.e[*].f", []string{"5", "6"}},
		{"$.e[1]", []string{`{"f": 6}`}},
		{"$", []string{data}},
		{"$.zzz", nil},
		{"$.a.b", nil},
	}
	for _, c := range cases {
		ev, err := Compile(c.q)
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		if _, err := ev.Run([]byte(data), func(s, e int) { got = append(got, data[s:e]) }); err != nil {
			t.Fatalf("%s: %v", c.q, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: got %q want %q", c.q, got, c.want)
		}
	}
}

func TestStringsWithMetachars(t *testing.T) {
	data := `{"fake:,{}": "a,b:c", "real": {"x": "}]"}}`
	ev, _ := Compile("$.real.x")
	var got []string
	if _, err := ev.Run([]byte(data), func(s, e int) { got = append(got, data[s:e]) }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{`"}]"`}) {
		t.Fatalf("got %q", got)
	}
}

func TestEscapedKeyBefore(t *testing.T) {
	data := []byte(`{"say \"hi\"": 1}`)
	ix, err := Build(data, 1)
	if err != nil {
		t.Fatal(err)
	}
	var key []byte
	bitsInRange(ix.colons[0], 0, len(data), func(p int) bool {
		key = keyBefore(data, p)
		return false
	})
	if string(key) != `say \"hi\"` {
		t.Fatalf("key = %q", key)
	}
}

func TestUnbalancedInput(t *testing.T) {
	if _, err := Build([]byte(`{"a": [1, 2}`), 2); err == nil {
		// The brace/bracket mix is not distinguished by depth counting,
		// but a missing closer must be.
		t.Log("mixed closers pass depth counting (documented limitation)")
	}
	if _, err := Build([]byte(`{"a": 1`), 1); err == nil {
		t.Fatal("missing closer should fail")
	}
	if _, err := Build([]byte(`{"a": 1}}`), 1); err == nil {
		t.Fatal("extra closer should fail")
	}
}

func genDoc(n int) string {
	var sb strings.Builder
	sb.WriteString(`{"meta": {"k": "v"}, "items": [`)
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"id": %d, "tags": ["a,b", "c]d"], "price": {"v": %d}}`, i, i*3)
	}
	sb.WriteString(`]}`)
	return sb.String()
}

func TestParallelBuildMatchesSerial(t *testing.T) {
	data := []byte(genDoc(300))
	for _, workers := range []int{2, 4, 8} {
		serial, err := Build(data, 4)
		if err != nil {
			t.Fatal(err)
		}
		par, err := ParallelBuild(data, 4, workers)
		if err != nil {
			t.Fatal(err)
		}
		for l := 0; l < 4; l++ {
			if !reflect.DeepEqual(serial.colons[l], par.colons[l]) {
				t.Fatalf("workers %d: level %d colons differ", workers, l)
			}
			if !reflect.DeepEqual(serial.commas[l], par.commas[l]) {
				t.Fatalf("workers %d: level %d commas differ", workers, l)
			}
		}
	}
}

func TestParallelBuildWithEscapesAtBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var sb strings.Builder
	sb.WriteString(`[`)
	for i := 0; i < 300; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"s": "%s%s", "id": %d}`,
			strings.Repeat(`\\`, rng.Intn(8)), strings.Repeat(`\"`, rng.Intn(5)), i)
	}
	sb.WriteString(`]`)
	data := []byte(sb.String())
	serial, err := Build(data, 2)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ParallelBuild(data, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < 2; l++ {
		if !reflect.DeepEqual(serial.colons[l], par.colons[l]) ||
			!reflect.DeepEqual(serial.commas[l], par.commas[l]) {
			t.Fatalf("level %d bitmaps differ", l)
		}
	}
}

func TestParallelRunQueries(t *testing.T) {
	data := []byte(genDoc(500))
	ev, _ := Compile("$.items[*].price.v")
	serialN, err := ev.Count(data)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := ParallelBuild(data, ev.Levels(), 8)
	if err != nil {
		t.Fatal(err)
	}
	parN, err := ev.RunIndex(ix, nil)
	if err != nil || parN != serialN {
		t.Fatalf("par %d serial %d err %v", parN, serialN, err)
	}
	if serialN != 500 {
		t.Fatalf("expected 500 matches, got %d", serialN)
	}
}

func TestEmptyInput(t *testing.T) {
	ev, _ := Compile("$.a")
	if _, err := ev.Run([]byte("   "), nil); err == nil {
		t.Fatal("expected error for blank input")
	}
}
