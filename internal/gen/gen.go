// Package gen synthesizes the six evaluation datasets of the JSONSki
// paper (Table 4) at configurable sizes. The real corpora (Twitter,
// Best Buy, Google Maps Directions, NSPL, Walmart, Wikidata) are not
// redistributable, so each generator reproduces the *structural* profile
// the paper reports — the ratio of objects to arrays to attributes to
// primitives, nesting depth, and where the queried paths sit in the
// record — because fast-forward behaviour depends on structure, not on
// the concrete strings.
//
// Every dataset comes in the paper's two formats: one single large record
// (Figures 10, 13, 14 and Table 6) and a sequence of small records
// (Figures 11 and 12).
package gen

import (
	"bytes"
	"fmt"
	"math/rand"
)

// Names lists the dataset identifiers, in the paper's order.
var Names = []string{"tt", "bb", "gmd", "nspl", "wm", "wp"}

// writer accumulates one record's text.
type writer struct {
	bytes.Buffer
	rng *rand.Rand
}

func (w *writer) kv(comma bool, key, format string, args ...any) {
	if comma {
		w.WriteByte(',')
	}
	fmt.Fprintf(&w.Buffer, `"%s":`, key)
	fmt.Fprintf(&w.Buffer, format, args...)
}

var words = []string{
	"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf",
	"hotel", "india", "juliet", "kilo", "lima", "mike", "november",
	"oscar", "papa", "quebec", "romeo", "sierra", "tango",
}

func (w *writer) text(n int) string {
	var b bytes.Buffer
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(words[w.rng.Intn(len(words))])
	}
	// Occasionally embed characters that stress string masking.
	switch w.rng.Intn(8) {
	case 0:
		b.WriteString(` {not a brace}`)
	case 1:
		b.WriteString(` [1,2]:`)
	case 2:
		b.WriteString(` quote \" inside`)
	}
	return b.String()
}

// Generate produces a single large record of roughly targetBytes for the
// named dataset. Generation is deterministic for a given (name, seed).
func Generate(name string, targetBytes int, seed int64) ([]byte, error) {
	g, err := generatorFor(name)
	if err != nil {
		return nil, err
	}
	return g.large(targetBytes, seed), nil
}

// GenerateRecords produces a sequence of small records totaling roughly
// targetBytes.
func GenerateRecords(name string, targetBytes int, seed int64) ([][]byte, error) {
	g, err := generatorFor(name)
	if err != nil {
		return nil, err
	}
	return g.small(targetBytes, seed), nil
}

type generator interface {
	large(target int, seed int64) []byte
	small(target int, seed int64) [][]byte
}

func generatorFor(name string) (generator, error) {
	switch name {
	case "tt":
		return ttGen{}, nil
	case "bb":
		return bbGen{}, nil
	case "gmd":
		return gmdGen{}, nil
	case "nspl":
		return nsplGen{}, nil
	case "wm":
		return wmGen{}, nil
	case "wp":
		return wpGen{}, nil
	default:
		return nil, fmt.Errorf("gen: unknown dataset %q (have %v)", name, Names)
	}
}

// elementsToTarget keeps emitting records from gen until the total
// reaches the target.
func elementsToTarget(target int, seed int64, one func(w *writer, i int)) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	var out [][]byte
	total := 0
	for i := 0; total < target; i++ {
		w := &writer{rng: rng}
		one(w, i)
		rec := append([]byte(nil), w.Bytes()...)
		out = append(out, rec)
		total += len(rec) + 1
	}
	return out
}

// joinArray wraps records into one big array record.
func joinArray(records [][]byte) []byte {
	var b bytes.Buffer
	b.WriteByte('[')
	for i, r := range records {
		if i > 0 {
			b.WriteByte(',')
		}
		b.Write(r)
	}
	b.WriteByte(']')
	return b.Bytes()
}

// ---------------------------------------------------------------- TT --

// ttGen emulates the Twitter stream: an array of tweet objects, object-
// heavy with moderate arrays, depth ~11. ~60% of tweets carry an
// entities object with a url list (query TT1); every tweet has a text
// attribute (TT2).
type ttGen struct{}

func (ttGen) tweet(w *writer, i int) {
	r := w.rng
	w.WriteByte('{')
	w.kv(false, "created_at", `"%s 2021"`, w.text(2))
	w.kv(true, "id", "%d", 1_000_000+i)
	w.kv(true, "text", `"%s"`, w.text(6+r.Intn(12)))
	w.kv(true, "source", `"<a href=\"https://twitter.test\">web</a>"`)
	// user: nested object with its own sub-objects
	w.kv(true, "user", `{"id":%d,"name":"%s","screen_name":"%s","verified":%t,"entities":{"description":{"urls":[]}},"followers_count":%d}`,
		r.Intn(1e7), w.text(2), words[r.Intn(len(words))], r.Intn(10) == 0, r.Intn(1e5))
	if r.Intn(5) != 0 { // coordinates (array attribute TT1 must skip by type)
		w.kv(true, "coordinates", `[%0.6f,%0.6f]`, r.Float64()*180-90, r.Float64()*360-180)
	}
	if r.Intn(5) < 3 { // entities present ~60%
		w.WriteString(`,"en":{"hashtags":[`)
		for h := 0; h < r.Intn(3); h++ {
			if h > 0 {
				w.WriteByte(',')
			}
			fmt.Fprintf(w, `{"text":"%s","indices":[%d,%d]}`, words[r.Intn(len(words))], h, h+7)
		}
		w.WriteString(`],"urls":[`)
		for u := 0; u < r.Intn(3); u++ {
			if u > 0 {
				w.WriteByte(',')
			}
			fmt.Fprintf(w, `{"url":"https://t.test/%d%d","expanded":{"full":"https://example.test/%s","meta":{"len":%d}},"indices":[[%d],[%d]]}`,
				i, u, words[r.Intn(len(words))], r.Intn(99), u, u+1)
		}
		w.WriteString(`]}`)
	}
	if r.Intn(4) == 0 { // place: object with bounding box, adds depth
		w.kv(true, "place", `{"name":"%s","bounding_box":{"type":"Polygon","pos":[[[%0.4f,%0.4f],[%0.4f,%0.4f]]]}}`,
			w.text(1), r.Float64(), r.Float64(), r.Float64(), r.Float64())
	}
	w.kv(true, "retweet_count", "%d", r.Intn(1000))
	w.kv(true, "lang", `"en"`)
	w.WriteByte('}')
}

func (g ttGen) small(target int, seed int64) [][]byte {
	return elementsToTarget(target, seed, g.tweet)
}

func (g ttGen) large(target int, seed int64) []byte {
	return joinArray(g.small(target-2, seed))
}

// ---------------------------------------------------------------- BB --

// bbGen emulates the Best Buy product dump: array-heavy (Table 4 shows
// 2.5 arrays per object), depth ~7. Root is an object whose "pd" array
// holds the products; cp (category path) is common, vc (variations) is
// rare, matching BB2's low match count.
type bbGen struct{}

func (bbGen) product(w *writer, i int) {
	r := w.rng
	w.WriteByte('{')
	w.kv(false, "sku", "%d", 4_000_000+i)
	w.kv(true, "nm", `"%s"`, w.text(4))
	w.kv(true, "upc", `"%012d"`, r.Int63n(1e12))
	w.WriteString(`,"cp":[`)
	for c := 0; c < 2+r.Intn(4); c++ { // 2..5 path entries; [1:3] usually full
		if c > 0 {
			w.WriteByte(',')
		}
		fmt.Fprintf(w, `{"id":"abcat%07d","nm":"%s","pids":[%d,%d],"crumbs":["%s","%s"]}`,
			r.Intn(1e7), words[r.Intn(len(words))], r.Intn(99), r.Intn(99),
			words[r.Intn(len(words))], words[r.Intn(len(words))])
	}
	w.WriteString(`]`)
	w.kv(true, "price", "%0.2f", r.Float64()*500)
	w.kv(true, "imgs", `["https://img.test/%d/a.jpg","https://img.test/%d/b.jpg"]`, i, i)
	w.kv(true, "dims", `[%0.1f,%0.1f,%0.1f]`, r.Float64()*10, r.Float64()*10, r.Float64()*10)
	if r.Intn(50) == 0 { // variations: rare, drives BB2's selectivity
		w.WriteString(`,"vc":[`)
		for v := 0; v < 1+r.Intn(2); v++ {
			if v > 0 {
				w.WriteByte(',')
			}
			fmt.Fprintf(w, `{"cha":"%s","vals":["%s","%s"]}`, w.text(1), words[r.Intn(len(words))], words[r.Intn(len(words))])
		}
		w.WriteString(`]`)
	}
	w.WriteString(`,"offers":[`)
	for o := 0; o < r.Intn(3); o++ {
		if o > 0 {
			w.WriteByte(',')
		}
		fmt.Fprintf(w, `{"id":%d,"pct":[%d,%d]}`, o, r.Intn(50), r.Intn(50))
	}
	w.WriteString(`]}`)
}

func (g bbGen) small(target int, seed int64) [][]byte {
	return elementsToTarget(target, seed, g.product)
}

func (g bbGen) large(target int, seed int64) []byte {
	products := g.small(target-40, seed)
	var b bytes.Buffer
	fmt.Fprintf(&b, `{"from":0,"total":%d,"pd":`, len(products))
	b.Write(joinArray(products))
	b.WriteString(`,"partial":false}`)
	return b.Bytes()
}

// --------------------------------------------------------------- GMD --

// gmdGen emulates Google Maps Directions: overwhelmingly objects (240
// objects per array in Table 4), deep (9): route -> legs -> steps, each
// step an object with a distance/duration object and a dt.tx instruction.
type gmdGen struct{}

func (gmdGen) direction(w *writer, i int) {
	r := w.rng
	w.WriteByte('{')
	w.kv(false, "status", `"OK"`)
	w.kv(true, "gid", `"%s-%d"`, words[r.Intn(len(words))], i)
	w.WriteString(`,"rt":[`)
	for rt := 0; rt < 1+r.Intn(2); rt++ {
		if rt > 0 {
			w.WriteByte(',')
		}
		w.WriteString(`{"summary":"` + words[r.Intn(len(words))] + `","lg":[`)
		for lg := 0; lg < 1+r.Intn(2); lg++ {
			if lg > 0 {
				w.WriteByte(',')
			}
			w.WriteString(`{"dist":{"text":"` + words[r.Intn(len(words))] + `","value":` + fmt.Sprint(r.Intn(1e5)) + `},"st":[`)
			for st := 0; st < 2+r.Intn(4); st++ {
				if st > 0 {
					w.WriteByte(',')
				}
				fmt.Fprintf(w, `{"dt":{"tx":"%s","vl":%d},"dur":{"text":"%d mins","value":%d},"start":{"lat":%0.5f,"lng":%0.5f},"end":{"lat":%0.5f,"lng":%0.5f},"mode":"DRIVING"}`,
					w.text(3+r.Intn(4)), r.Intn(5000), r.Intn(60), r.Intn(3600),
					r.Float64()*90, r.Float64()*180, r.Float64()*90, r.Float64()*180)
			}
			w.WriteString(`]}`)
		}
		w.WriteString(`]}`)
	}
	w.WriteString(`]`)
	if r.Intn(100) == 0 { // atm: very rare (GMD2 has 270 matches on 1GB)
		w.kv(true, "atm", `{"kind":"notice","msg":"%s"}`, w.text(2))
	}
	w.WriteByte('}')
}

func (g gmdGen) small(target int, seed int64) [][]byte {
	return elementsToTarget(target, seed, g.direction)
}

func (g gmdGen) large(target int, seed int64) []byte {
	return joinArray(g.small(target-2, seed))
}

// -------------------------------------------------------------- NSPL --

// nsplGen emulates the National Statistics Postcode Lookup: a tiny
// metadata object followed by an enormous primitive-heavy table — 613
// objects versus 3.5M arrays and 84M primitives in Table 4. Query NSPL1
// touches only the metadata (hence the paper's 99.99% G4 ratio); NSPL2
// slices each row (G5).
type nsplGen struct{}

func (nsplGen) row(w *writer, i int) {
	r := w.rng
	// a row: array of small arrays of primitives
	w.WriteByte('[')
	cells := 4 + r.Intn(4)
	for c := 0; c < cells; c++ {
		if c > 0 {
			w.WriteByte(',')
		}
		w.WriteByte('[')
		vals := 4 + r.Intn(5)
		for v := 0; v < vals; v++ {
			if v > 0 {
				w.WriteByte(',')
			}
			switch r.Intn(3) {
			case 0:
				fmt.Fprintf(w, `"%s%d %dAB"`, words[r.Intn(len(words))][:2], r.Intn(99), r.Intn(9))
			case 1:
				fmt.Fprint(w, r.Intn(1e6))
			default:
				fmt.Fprintf(w, "%0.4f", r.Float64()*100)
			}
		}
		w.WriteByte(']')
	}
	w.WriteByte(']')
}

func (g nsplGen) small(target int, seed int64) [][]byte {
	return elementsToTarget(target, seed, g.row)
}

func (g nsplGen) large(target int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	var b bytes.Buffer
	// metadata object first: NSPL1's 44 matches live here
	b.WriteString(`{"mt":{"id":"nspl-2021","vw":{"nm":"default","co":[`)
	for i := 0; i < 44; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"nm":"col_%s_%d","ty":"text","w":%d}`, words[rng.Intn(len(words))], i, rng.Intn(300))
	}
	b.WriteString(`]},"attribution":["ONS","OS"]},"dt":`)
	rows := elementsToTarget(target-b.Len()-2, seed+1, nsplGen{}.row)
	b.Write(joinArray(rows))
	b.WriteString(`}`)
	return b.Bytes()
}

// ---------------------------------------------------------------- WM --

// wmGen emulates the Walmart product feed: shallow (depth 4), attribute-
// dense objects with very few arrays. bmrpr (buy-box price) is present on
// ~6% of items (WM1's selectivity); every item has nm (WM2).
type wmGen struct{}

func (wmGen) item(w *writer, i int) {
	r := w.rng
	w.WriteByte('{')
	w.kv(false, "itemId", "%d", 10_000_000+i)
	w.kv(true, "nm", `"%s"`, w.text(5))
	w.kv(true, "msrp", "%0.2f", r.Float64()*900)
	w.kv(true, "salePrice", "%0.2f", r.Float64()*800)
	w.kv(true, "upc", `"%012d"`, r.Int63n(1e12))
	w.kv(true, "cat", `{"l1":"%s","l2":"%s","l3":{"name":"%s","id":%d}}`,
		words[r.Intn(len(words))], words[r.Intn(len(words))], words[r.Intn(len(words))], r.Intn(1e4))
	if r.Intn(16) == 0 {
		w.kv(true, "bmrpr", `{"pr":%0.2f,"cur":"USD"}`, r.Float64()*700)
	}
	w.kv(true, "desc", `"%s"`, w.text(10+r.Intn(10)))
	w.kv(true, "stock", `{"online":%t,"store":%t}`, r.Intn(2) == 0, r.Intn(2) == 0)
	w.kv(true, "reviews", `{"count":%d,"avg":{"overall":%0.1f}}`, r.Intn(5000), r.Float64()*5)
	w.WriteByte('}')
}

func (g wmGen) small(target int, seed int64) [][]byte {
	return elementsToTarget(target, seed, g.item)
}

func (g wmGen) large(target int, seed int64) []byte {
	items := g.small(target-40, seed)
	var b bytes.Buffer
	fmt.Fprintf(&b, `{"query":"*","totalResults":%d,"it":`, len(items))
	b.Write(joinArray(items))
	b.WriteString(`,"facets":[]}`)
	return b.Bytes()
}

// ---------------------------------------------------------------- WP --

// wpGen emulates the Wikidata entity dump: the deepest dataset (12) with
// the most objects (17.3M). Each entity holds labels and a claims object
// whose P-properties map to arrays of statements; P150 appears on a
// fraction of entities (WP1).
type wpGen struct{}

func (wpGen) entity(w *writer, i int) {
	r := w.rng
	w.WriteByte('{')
	w.kv(false, "id", `"Q%d"`, 100+i)
	w.kv(true, "ty", `"item"`)
	w.kv(true, "lb", `{"en":{"language":"en","value":"%s"},"de":{"language":"de","value":"%s"}}`,
		w.text(2), w.text(2))
	w.WriteString(`,"cl":{`)
	first := true
	if r.Intn(3) == 0 { // P150: contains administrative territorial entity
		w.WriteString(`"P150":[`)
		for s := 0; s < 1+r.Intn(3); s++ {
			if s > 0 {
				w.WriteByte(',')
			}
			fmt.Fprintf(w, `{"ms":{"pty":"P150","dv":{"value":{"entity":{"nid":%d,"meta":{"rev":{"n":%d}}}},"type":"wikibase-entityid"}},"rank":"normal"}`,
				r.Intn(1e6), r.Intn(1e3))
		}
		w.WriteString(`]`)
		first = false
	}
	for p := 0; p < 2+r.Intn(3); p++ { // other properties
		if !first {
			w.WriteByte(',')
		}
		first = false
		fmt.Fprintf(w, `"P%d":[{"ms":{"pty":"P%d","dv":{"value":"%s","type":"string"}},"rank":"normal","refs":[{"snaks":{"P248":[{"dt":"x"}]}}]}]`,
			31+p, 31+p, words[r.Intn(len(words))])
	}
	w.WriteString(`}`)
	w.kv(true, "sitelinks", `{"enwiki":{"site":"enwiki","title":"%s"}}`, w.text(2))
	w.WriteByte('}')
}

func (g wpGen) small(target int, seed int64) [][]byte {
	return elementsToTarget(target, seed, g.entity)
}

func (g wpGen) large(target int, seed int64) []byte {
	return joinArray(g.small(target-2, seed))
}
