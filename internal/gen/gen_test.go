package gen

import (
	"encoding/json"
	"testing"
)

func TestGenerateValidJSON(t *testing.T) {
	for _, name := range Names {
		data, err := Generate(name, 64<<10, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !json.Valid(data) {
			t.Errorf("%s: large record is invalid JSON", name)
		}
		recs, err := GenerateRecords(name, 64<<10, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) < 2 {
			t.Errorf("%s: only %d small records", name, len(recs))
		}
		for i, r := range recs[:2] {
			if !json.Valid(r) {
				t.Errorf("%s: record %d invalid JSON: %.80s", name, i, r)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate("tt", 32<<10, 7)
	b, _ := Generate("tt", 32<<10, 7)
	if string(a) != string(b) {
		t.Fatal("same seed must give identical output")
	}
	c, _ := Generate("tt", 32<<10, 8)
	if string(a) == string(c) {
		t.Fatal("different seeds should differ")
	}
}

func TestGenerateSizeTarget(t *testing.T) {
	for _, name := range Names {
		data, _ := Generate(name, 256<<10, 3)
		if len(data) < 256<<10 || len(data) > 300<<10 {
			t.Errorf("%s: size %d not near 256KiB target", name, len(data))
		}
	}
}

func TestGenerateUnknownName(t *testing.T) {
	if _, err := Generate("nope", 1024, 1); err == nil {
		t.Fatal("unknown dataset should error")
	}
	if _, err := GenerateRecords("nope", 1024, 1); err == nil {
		t.Fatal("unknown dataset should error")
	}
}

// TestStructuralProfiles checks that each dataset reproduces its Table 4
// character: which of objects/arrays dominates, primitive density, and
// depth.
func TestStructuralProfiles(t *testing.T) {
	size := 512 << 10
	get := func(name string) TableStats {
		data, err := Generate(name, size, 2)
		if err != nil {
			t.Fatal(err)
		}
		return Stats(data)
	}
	tt := get("tt")
	if tt.MaxDepth < 7 {
		t.Errorf("tt depth = %d, want >= 7", tt.MaxDepth)
	}
	if tt.Objects < tt.Arrays {
		t.Errorf("tt should be object-leaning: %+v", tt)
	}
	bb := get("bb")
	if bb.Arrays < bb.Objects {
		t.Errorf("bb should be array-heavy (Table 4: 4.88M arrays vs 1.91M objects): %+v", bb)
	}
	gmd := get("gmd")
	if gmd.Objects < 5*gmd.Arrays {
		t.Errorf("gmd should be overwhelmingly objects: %+v", gmd)
	}
	nspl := get("nspl")
	if nspl.Arrays < 100*nspl.Objects {
		t.Errorf("nspl should be nearly all arrays+primitives: %+v", nspl)
	}
	if nspl.Primitives < 10*nspl.Attributes {
		t.Errorf("nspl should be primitive-dominated: %+v", nspl)
	}
	wm := get("wm")
	if wm.MaxDepth > 6 {
		t.Errorf("wm should be shallow (Table 4 depth 4): %+v", wm)
	}
	if wm.Arrays*10 > wm.Objects {
		t.Errorf("wm should have very few arrays: %+v", wm)
	}
	wp := get("wp")
	if wp.MaxDepth < 8 {
		t.Errorf("wp should be deep (Table 4 depth 12): %+v", wp)
	}
}

func TestStatsOnKnownInput(t *testing.T) {
	st := Stats([]byte(`{"a": [1, "two", {"b": null}], "c": true}`))
	if st.Objects != 2 || st.Arrays != 1 {
		t.Errorf("containers: %+v", st)
	}
	if st.Attributes != 3 {
		t.Errorf("attrs: %+v", st)
	}
	// primitives: 1, "two", null, true
	if st.Primitives != 4 {
		t.Errorf("prims: %+v", st)
	}
	if st.MaxDepth != 3 {
		t.Errorf("depth: %+v", st)
	}
	if st.String() == "" {
		t.Error("String() empty")
	}
}

func TestStatsIgnoresStringContent(t *testing.T) {
	st := Stats([]byte(`{"k": "{[1,2]: fake}"}`))
	if st.Objects != 1 || st.Arrays != 0 || st.Attributes != 1 || st.Primitives != 1 {
		t.Errorf("stats fooled by string content: %+v", st)
	}
}
