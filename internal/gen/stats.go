package gen

import "fmt"

// TableStats summarizes a dataset's structure, mirroring the columns of
// the paper's Table 4.
type TableStats struct {
	Bytes      int64
	Objects    int64
	Arrays     int64
	Attributes int64
	Primitives int64
	MaxDepth   int
}

// String renders one Table-4-style row.
func (s TableStats) String() string {
	return fmt.Sprintf("bytes=%d objects=%d arrays=%d attrs=%d prims=%d depth=%d",
		s.Bytes, s.Objects, s.Arrays, s.Attributes, s.Primitives, s.MaxDepth)
}

// Stats scans a record (or concatenated records) and counts its
// structure. The scan is scalar; it is a reporting tool, not a
// performance path.
func Stats(data []byte) TableStats {
	st := TableStats{Bytes: int64(len(data))}
	depth := 0
	inStr := false
	expectValue := true          // next non-ws token starts a value
	stack := make([]bool, 0, 64) // true = array, per open container
	for i := 0; i < len(data); i++ {
		c := data[i]
		if inStr {
			switch c {
			case '\\':
				i++
			case '"':
				inStr = false
			}
			continue
		}
		switch c {
		case '"':
			inStr = true
			if expectValue {
				st.Primitives++
				expectValue = false
			}
		case '{':
			st.Objects++
			depth++
			if depth > st.MaxDepth {
				st.MaxDepth = depth
			}
			stack = append(stack, false)
			expectValue = false
		case '[':
			st.Arrays++
			depth++
			if depth > st.MaxDepth {
				st.MaxDepth = depth
			}
			stack = append(stack, true)
			expectValue = true
		case '}', ']':
			depth--
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
			expectValue = false
		case ':':
			st.Attributes++
			expectValue = true
		case ',':
			// In an array a comma precedes a value; in an object it
			// precedes the next key.
			expectValue = len(stack) > 0 && stack[len(stack)-1]
		case ' ', '\t', '\n', '\r':
		default:
			if expectValue {
				st.Primitives++
				expectValue = false
				// consume the rest of the primitive token
				for i+1 < len(data) {
					switch data[i+1] {
					case ',', '}', ']', ' ', '\t', '\n', '\r':
						goto donePrim
					}
					i++
				}
			donePrim:
			}
		}
	}
	return st
}
