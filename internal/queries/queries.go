// Package queries binds the twelve JSONPath queries of the paper's
// Table 5 to the synthetic datasets of internal/gen. Each query has a
// form for the single-large-record scenario and — where the paper deems
// it applicable — a form for the small-record scenario, with the leading
// step that addresses the record container stripped.
package queries

import "fmt"

// Q is one evaluated query.
type Q struct {
	ID      string // paper identifier: TT1, TT2, ...
	Dataset string // gen dataset name
	Large   string // query over the single large record
	Small   string // query over individual small records; "" if N/A
}

// All lists the Table 5 queries in the paper's order.
var All = []Q{
	{ID: "TT1", Dataset: "tt", Large: "$[*].en.urls[*].url", Small: "$.en.urls[*].url"},
	{ID: "TT2", Dataset: "tt", Large: "$[*].text", Small: "$.text"},
	{ID: "BB1", Dataset: "bb", Large: "$.pd[*].cp[1:3].id", Small: "$.cp[1:3].id"},
	{ID: "BB2", Dataset: "bb", Large: "$.pd[*].vc[*].cha", Small: "$.vc[*].cha"},
	{ID: "GMD1", Dataset: "gmd", Large: "$[*].rt[*].lg[*].st[*].dt.tx", Small: "$.rt[*].lg[*].st[*].dt.tx"},
	{ID: "GMD2", Dataset: "gmd", Large: "$[*].atm", Small: "$.atm"},
	{ID: "NSPL1", Dataset: "nspl", Large: "$.mt.vw.co[*].nm", Small: ""},
	{ID: "NSPL2", Dataset: "nspl", Large: "$.dt[*][*][2:4]", Small: "$[*][2:4]"},
	{ID: "WM1", Dataset: "wm", Large: "$.it[*].bmrpr.pr", Small: "$.bmrpr.pr"},
	{ID: "WM2", Dataset: "wm", Large: "$.it[*].nm", Small: "$.nm"},
	{ID: "WP1", Dataset: "wp", Large: "$[*].cl.P150[*].ms.pty", Small: "$.cl.P150[*].ms.pty"},
	{ID: "WP2", Dataset: "wp", Large: "$[10:21].cl.P150[*].ms.pty", Small: ""},
}

// ByID returns the query with the given paper identifier.
func ByID(id string) (Q, error) {
	for _, q := range All {
		if q.ID == id {
			return q, nil
		}
	}
	return Q{}, fmt.Errorf("queries: unknown query id %q", id)
}

// ForDataset returns the queries evaluated over one dataset.
func ForDataset(name string) []Q {
	var out []Q
	for _, q := range All {
		if q.Dataset == name {
			out = append(out, q)
		}
	}
	return out
}
