package queries

import (
	"testing"

	"jsonski/internal/automaton"
	"jsonski/internal/baseline/charstream"
	"jsonski/internal/core"
	"jsonski/internal/gen"
	"jsonski/internal/jsonpath"
)

func TestAllParse(t *testing.T) {
	for _, q := range All {
		if _, err := jsonpath.Parse(q.Large); err != nil {
			t.Errorf("%s large: %v", q.ID, err)
		}
		if q.Small != "" {
			if _, err := jsonpath.Parse(q.Small); err != nil {
				t.Errorf("%s small: %v", q.ID, err)
			}
		}
	}
}

func TestByID(t *testing.T) {
	q, err := ByID("TT1")
	if err != nil || q.Dataset != "tt" {
		t.Fatalf("q=%+v err=%v", q, err)
	}
	if _, err := ByID("XX9"); err == nil {
		t.Fatal("unknown id should error")
	}
}

func TestForDataset(t *testing.T) {
	if got := ForDataset("bb"); len(got) != 2 || got[0].ID != "BB1" {
		t.Fatalf("got %+v", got)
	}
	if got := ForDataset("none"); got != nil {
		t.Fatalf("got %+v", got)
	}
}

// TestQueriesFindMatchesOnGeneratedData runs every Table 5 query over its
// generated dataset and requires (a) a positive match count, (b) exact
// agreement between JSONSki and the character-streaming baseline, and
// (c) for the large-record scenario an overall fast-forward ratio in the
// ballpark the paper reports (>90%).
func TestQueriesFindMatchesOnGeneratedData(t *testing.T) {
	const size = 1 << 20 // 1 MiB per dataset keeps the test fast
	for _, q := range All {
		data, err := gen.Generate(q.Dataset, size, 42)
		if err != nil {
			t.Fatal(err)
		}
		p := jsonpath.MustParse(q.Large)
		e := core.NewEngine(automaton.New(p))
		st, err := e.Run(data, nil)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		if st.Matches == 0 {
			t.Errorf("%s: zero matches on generated %s data", q.ID, q.Dataset)
		}
		cs := charstream.New(p)
		n, err := cs.Count(data)
		if err != nil {
			t.Fatalf("%s charstream: %v", q.ID, err)
		}
		if n != st.Matches {
			t.Errorf("%s: jsonski %d matches, charstream %d", q.ID, st.Matches, n)
		}
		if r := st.FastForwardRatio(); r < 0.90 {
			t.Errorf("%s: fast-forward ratio %.3f below 0.90", q.ID, r)
		}
	}
}

// TestSmallRecordQueriesAgree does the same for the small-record forms.
func TestSmallRecordQueriesAgree(t *testing.T) {
	const size = 1 << 20
	for _, q := range All {
		if q.Small == "" {
			continue
		}
		recs, err := gen.GenerateRecords(q.Dataset, size, 43)
		if err != nil {
			t.Fatal(err)
		}
		p := jsonpath.MustParse(q.Small)
		e := core.NewEngine(automaton.New(p))
		cs := charstream.New(p)
		var total, csTotal int64
		for _, rec := range recs {
			st, err := e.Run(rec, nil)
			if err != nil {
				t.Fatalf("%s: %v", q.ID, err)
			}
			total += st.Matches
			n, err := cs.Count(rec)
			if err != nil {
				t.Fatalf("%s charstream: %v", q.ID, err)
			}
			csTotal += n
		}
		if total == 0 {
			t.Errorf("%s small: zero matches", q.ID)
		}
		if total != csTotal {
			t.Errorf("%s small: jsonski %d, charstream %d", q.ID, total, csTotal)
		}
	}
}
