// Package automaton implements the query automaton of paper §3.1
// (Figure 5): a pushdown automaton whose states are the number of path
// steps matched so far. In the paper's recursive-descent streaming model
// the automaton's stack *is* the parser's call stack, so this package is
// deliberately stackless: the engine threads the integer state through its
// recursion, and the [Ary-S]/[Ary-E]/[Val] push/pop rules fall out of
// ordinary function call and return.
package automaton

import (
	"bytes"

	"jsonski/internal/jsonpath"
)

// Status is the matching status after a transition (paper Figure 4/5).
type Status uint8

// Matching statuses.
const (
	Unmatched Status = iota // no progress possible below this value
	Matched                 // progressed one step, more steps remain
	Accept                  // all steps matched; the value is an output
	// Candidate: the pending step is a filter selector. The value's span
	// must be consumed and the predicate probed before the engine knows
	// whether the successor state (Matched or Accept) applies.
	Candidate
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Matched:
		return "matched"
	case Accept:
		return "accept"
	case Candidate:
		return "candidate"
	default:
		return "unmatched"
	}
}

// Automaton is the compiled matching logic for one path query.
// It is immutable and safe for concurrent use.
type Automaton struct {
	steps []jsonpath.Step
	root  jsonpath.ValueType
}

// New compiles the automaton for a parsed path.
func New(p *jsonpath.Path) *Automaton {
	return &Automaton{steps: p.Steps, root: p.RootType()}
}

// StepCount returns the number of path steps (the accept state index).
func (a *Automaton) StepCount() int { return len(a.steps) }

// RootType returns the inferred type of the record root.
func (a *Automaton) RootType() jsonpath.ValueType { return a.root }

// Step returns the i-th path step. The caller must keep i < StepCount.
func (a *Automaton) Step(i int) jsonpath.Step { return a.steps[i] }

// statusFor converts a successor state into a Status.
func (a *Automaton) statusFor(next int) Status {
	if next == len(a.steps) {
		return Accept
	}
	return Matched
}

// IsObjectState reports whether state q can consume attribute names
// (the pending step selects object members). When q is the accept state
// it returns false.
func (a *Automaton) IsObjectState(q int) bool {
	if q >= len(a.steps) {
		return false
	}
	st := a.steps[q]
	return st.SelectsMembers() || st.Kind == jsonpath.Descendant
}

// IsArrayState reports whether state q can consume array element indexes.
func (a *Automaton) IsArrayState(q int) bool {
	if q >= len(a.steps) {
		return false
	}
	st := a.steps[q]
	return st.SelectsElements() || st.Kind == jsonpath.Descendant
}

// MatchKey applies the [Key] rule: in state q, consuming attribute name
// `name` (raw bytes between the quotes, escapes unresolved). It returns
// the successor state and the status. On Unmatched the successor state is
// meaningless. A filter state returns Candidate: the member is selected
// only if its value satisfies the predicate, which the engine resolves
// after consuming the span.
func (a *Automaton) MatchKey(q int, name []byte) (int, Status) {
	if q >= len(a.steps) {
		return q, Unmatched
	}
	st := a.steps[q]
	switch st.Kind {
	case jsonpath.Wildcard:
		return q + 1, a.statusFor(q + 1)
	case jsonpath.Child:
		if KeyEqual(name, st.Name) {
			return q + 1, a.statusFor(q + 1)
		}
	case jsonpath.Filter:
		return q + 1, Candidate
	}
	return q, Unmatched
}

// MatchIndex applies the array rules: in state q, consuming the element
// at index idx. It returns the successor state and status (Candidate for
// filter states, as in MatchKey).
func (a *Automaton) MatchIndex(q int, idx int) (int, Status) {
	if q >= len(a.steps) {
		return q, Unmatched
	}
	st := a.steps[q]
	switch st.Kind {
	case jsonpath.Wildcard:
		return q + 1, a.statusFor(q + 1)
	case jsonpath.Index, jsonpath.Slice:
		if IndexMatches(st, idx) {
			return q + 1, a.statusFor(q + 1)
		}
	case jsonpath.Filter:
		return q + 1, Candidate
	}
	return q, Unmatched
}

// IndexMatches reports whether a streamable index/slice/wildcard step
// selects element idx, honoring the slice stride.
func IndexMatches(st jsonpath.Step, idx int) bool {
	if idx < st.Lo || idx >= st.Hi {
		return false
	}
	if st.Kind == jsonpath.Slice && st.Stride > 1 && (idx-st.Lo)%st.Stride != 0 {
		return false
	}
	return true
}

// Range returns the element index range selected in state q and whether
// the state is range-constrained at all (false for [*], filters, and
// non-array states). Stride gaps inside the range are not represented
// here; MatchIndex rejects them element-wise.
func (a *Automaton) Range(q int) (lo, hi int, constrained bool) {
	if q >= len(a.steps) {
		return 0, 0, false
	}
	st := a.steps[q]
	switch st.Kind {
	case jsonpath.Index, jsonpath.Slice:
		return st.Lo, st.Hi, true
	}
	return 0, jsonpath.MaxIndex, false
}

// TypeExpected returns the inferred type of the values that can make
// progress from state q — the fast-forward type filter of §3.2 (G1).
// At the accept state or the last step it returns Unknown.
func (a *Automaton) TypeExpected(q int) jsonpath.ValueType {
	if q >= len(a.steps) {
		return jsonpath.Unknown
	}
	return a.steps[q].Expect
}

// KeyEqual compares a raw JSON attribute name (as read from the input,
// escapes intact) with a query step name. The fast path is a plain byte
// comparison; names containing backslashes fall back to unescaping.
func KeyEqual(raw []byte, name string) bool {
	if bytes.IndexByte(raw, '\\') < 0 {
		return string(raw) == name // no allocation: compiler optimizes
	}
	return string(unescape(raw)) == name
}

// unescape resolves the JSON string escapes that can appear inside an
// attribute name. Unicode escapes decode to UTF-8; invalid escapes are
// kept verbatim rather than rejected, since the surrounding tokenizer has
// already validated the string's quoting.
func unescape(raw []byte) []byte {
	out := make([]byte, 0, len(raw))
	for i := 0; i < len(raw); i++ {
		c := raw[i]
		if c != '\\' || i+1 >= len(raw) {
			out = append(out, c)
			continue
		}
		i++
		switch raw[i] {
		case '"':
			out = append(out, '"')
		case '\\':
			out = append(out, '\\')
		case '/':
			out = append(out, '/')
		case 'b':
			out = append(out, '\b')
		case 'f':
			out = append(out, '\f')
		case 'n':
			out = append(out, '\n')
		case 'r':
			out = append(out, '\r')
		case 't':
			out = append(out, '\t')
		case 'u':
			if i+4 < len(raw) {
				r := rune(0)
				ok := true
				for k := 1; k <= 4; k++ {
					r <<= 4
					switch d := raw[i+k]; {
					case d >= '0' && d <= '9':
						r |= rune(d - '0')
					case d >= 'a' && d <= 'f':
						r |= rune(d-'a') + 10
					case d >= 'A' && d <= 'F':
						r |= rune(d-'A') + 10
					default:
						ok = false
					}
				}
				if ok {
					out = appendRune(out, r)
					i += 4
					continue
				}
			}
			out = append(out, '\\', 'u')
		default:
			out = append(out, '\\', raw[i])
		}
	}
	return out
}

// appendRune appends the UTF-8 encoding of r.
func appendRune(out []byte, r rune) []byte {
	switch {
	case r < 0x80:
		return append(out, byte(r))
	case r < 0x800:
		return append(out, 0xC0|byte(r>>6), 0x80|byte(r&0x3F))
	default:
		return append(out, 0xE0|byte(r>>12), 0x80|byte(r>>6&0x3F), 0x80|byte(r&0x3F))
	}
}
