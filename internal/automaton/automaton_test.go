package automaton

import (
	"testing"

	"jsonski/internal/jsonpath"
)

func compile(t *testing.T, q string) *Automaton {
	t.Helper()
	p, err := jsonpath.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	return New(p)
}

func TestMatchKeyProgression(t *testing.T) {
	a := compile(t, "$.place.name")
	q, st := a.MatchKey(0, []byte("place"))
	if st != Matched || q != 1 {
		t.Fatalf("MatchKey(place) = %d,%v", q, st)
	}
	q, st = a.MatchKey(1, []byte("name"))
	if st != Accept || q != 2 {
		t.Fatalf("MatchKey(name) = %d,%v", q, st)
	}
	_, st = a.MatchKey(0, []byte("user"))
	if st != Unmatched {
		t.Fatalf("MatchKey(user) = %v", st)
	}
	// beyond accept state, nothing matches
	_, st = a.MatchKey(2, []byte("anything"))
	if st != Unmatched {
		t.Fatalf("MatchKey at accept = %v", st)
	}
}

func TestMatchKeyEscapedName(t *testing.T) {
	// escaped quote in the JSON input matching a plain query name
	c := compile(t, `$['say "hi"']`)
	if _, st := c.MatchKey(0, []byte(`say \"hi\"`)); st != Accept {
		t.Fatalf("escaped key should match, got %v", st)
	}
	// unicode escape A = 'A'
	d := compile(t, "$.A")
	if _, st := d.MatchKey(0, []byte(`\u0041`)); st != Accept {
		t.Fatalf("unicode-escaped key should match, got %v", st)
	}
}

func TestMatchIndex(t *testing.T) {
	a := compile(t, "$[2:4].id")
	if _, st := a.MatchIndex(0, 1); st != Unmatched {
		t.Fatalf("idx 1 = %v", st)
	}
	if q, st := a.MatchIndex(0, 2); st != Matched || q != 1 {
		t.Fatalf("idx 2 = %d,%v", q, st)
	}
	if _, st := a.MatchIndex(0, 4); st != Unmatched {
		t.Fatalf("idx 4 = %v", st)
	}
	// index on an object state
	if _, st := a.MatchIndex(1, 0); st != Unmatched {
		t.Fatalf("index at child step = %v", st)
	}
}

func TestWildcardIndex(t *testing.T) {
	a := compile(t, "$[*]")
	for _, i := range []int{0, 5, 100000} {
		if _, st := a.MatchIndex(0, i); st != Accept {
			t.Fatalf("wildcard idx %d = %v", i, st)
		}
	}
}

func TestAnyChild(t *testing.T) {
	a := compile(t, "$.*")
	if _, st := a.MatchKey(0, []byte("whatever")); st != Accept {
		t.Fatalf("any-child = %v", st)
	}
}

func TestRange(t *testing.T) {
	a := compile(t, "$[2:4]")
	lo, hi, ok := a.Range(0)
	if !ok || lo != 2 || hi != 4 {
		t.Fatalf("Range = %d,%d,%v", lo, hi, ok)
	}
	b := compile(t, "$[*]")
	if _, _, ok := b.Range(0); ok {
		t.Fatal("wildcard should be unconstrained")
	}
	c := compile(t, "$.x")
	if _, _, ok := c.Range(0); ok {
		t.Fatal("child step should be unconstrained")
	}
	d := compile(t, "$[7]")
	lo, hi, ok = d.Range(0)
	if !ok || lo != 7 || hi != 8 {
		t.Fatalf("index Range = %d,%d,%v", lo, hi, ok)
	}
}

func TestTypeExpected(t *testing.T) {
	a := compile(t, "$.pd[*].cp[1:3].id")
	// state 0 (.pd) expects a container: the RFC wildcard successor
	// selects from objects and arrays alike, but never from a primitive.
	if got := a.TypeExpected(0); got != jsonpath.Container {
		t.Errorf("state 0 expects %v", got)
	}
	// state 1 ([*]) expects object (.cp)
	if got := a.TypeExpected(1); got != jsonpath.Object {
		t.Errorf("state 1 expects %v", got)
	}
	// state 2 (.cp) expects array ([1:3])
	if got := a.TypeExpected(2); got != jsonpath.Array {
		t.Errorf("state 2 expects %v", got)
	}
	// state 4 (.id, last) unknown
	if got := a.TypeExpected(4); got != jsonpath.Unknown {
		t.Errorf("state 4 expects %v", got)
	}
	// accept state unknown
	if got := a.TypeExpected(5); got != jsonpath.Unknown {
		t.Errorf("accept expects %v", got)
	}
}

func TestStateClassifiers(t *testing.T) {
	a := compile(t, "$.pd[*].id")
	if !a.IsObjectState(0) || a.IsArrayState(0) {
		t.Error("state 0 should be an object state")
	}
	// Wildcard states select members and elements alike (RFC 9535).
	if !a.IsArrayState(1) || !a.IsObjectState(1) {
		t.Error("state 1 should be both an object and an array state")
	}
	if a.IsObjectState(3) || a.IsArrayState(3) {
		t.Error("accept state classifies as neither")
	}
}

func TestRootTypeAndStepCount(t *testing.T) {
	a := compile(t, "$[*].text")
	// A leading wildcard admits object and array roots alike.
	if a.RootType() != jsonpath.Container {
		t.Errorf("RootType = %v", a.RootType())
	}
	if a.StepCount() != 2 {
		t.Errorf("StepCount = %d", a.StepCount())
	}
	if a.Step(1).Name != "text" {
		t.Errorf("Step(1) = %+v", a.Step(1))
	}
}

func TestUnescape(t *testing.T) {
	cases := []struct{ in, want string }{
		{`plain`, "plain"},
		{`a\"b`, `a"b`},
		{`a\\b`, `a\b`},
		{`a\/b`, "a/b"},
		{`a\nb`, "a\nb"},
		{`a\tb`, "a\tb"},
		{`a\rb`, "a\rb"},
		{`a\bb`, "a\bb"},
		{`a\fb`, "a\fb"},
		{`\u0041`, "A"},
		{`\u00e9`, "é"},
		{`\u20ac`, "€"},
		{`\uZZZZ`, `\uZZZZ`}, // invalid escape kept verbatim
		{`\q`, `\q`},         // unknown escape kept verbatim
		{`trailing\`, `trailing\`},
	}
	for _, c := range cases {
		if got := string(unescape([]byte(c.in))); got != c.want {
			t.Errorf("unescape(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestStatusString(t *testing.T) {
	if Unmatched.String() != "unmatched" || Matched.String() != "matched" || Accept.String() != "accept" {
		t.Fatal("Status.String broken")
	}
}
