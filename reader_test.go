package jsonski

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"testing"
)

func ndjsonInput(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, `{"pad": "%s", "v": %d}`, strings.Repeat("x", i%40), i)
		sb.WriteByte('\n')
		if i%7 == 0 {
			sb.WriteString("\n") // blank lines are skipped
		}
	}
	return sb.String()
}

func TestRunReader(t *testing.T) {
	q := MustCompile("$.v")
	var got []string
	st, err := q.RunReader(strings.NewReader(ndjsonInput(50)), func(m Match) {
		got = append(got, fmt.Sprintf("%d:%s", m.Record, m.Value))
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Matches != 50 || len(got) != 50 {
		t.Fatalf("matches = %d, got %d values", st.Matches, len(got))
	}
	if got[0] != "0:0" || got[49] != "49:49" {
		t.Fatalf("got[0]=%q got[49]=%q", got[0], got[49])
	}
}

func TestRunReaderNoTrailingNewline(t *testing.T) {
	q := MustCompile("$.v")
	in := `{"v": 1}` + "\n" + `{"v": 2}` // no trailing \n
	st, err := q.RunReader(strings.NewReader(in), nil)
	if err != nil || st.Matches != 2 {
		t.Fatalf("st=%+v err=%v", st, err)
	}
}

func TestRunReaderLongLines(t *testing.T) {
	q := MustCompile("$.v")
	big := strings.Repeat("y", 200000)
	in := fmt.Sprintf(`{"pad": "%s", "v": 9}%s{"v": 10}`, big, "\n")
	st, err := q.RunReader(strings.NewReader(in), nil)
	if err != nil || st.Matches != 2 {
		t.Fatalf("st=%+v err=%v", st, err)
	}
}

func TestRunReaderMalformedRecord(t *testing.T) {
	q := MustCompile("$.v.x")
	in := `{"v": {"x": 1}}` + "\n" + `{"v": {` + "\n"
	if _, err := q.RunReader(strings.NewReader(in), nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunReaderParallel(t *testing.T) {
	q := MustCompile("$.v")
	const n = 300
	var mu sync.Mutex
	var recs []int
	st, err := q.RunReaderParallel(strings.NewReader(ndjsonInput(n)), 8, func(m Match) {
		mu.Lock()
		recs = append(recs, m.Record)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Matches != n {
		t.Fatalf("matches = %d", st.Matches)
	}
	sort.Ints(recs)
	for i, r := range recs {
		if r != i {
			t.Fatalf("missing record %d", i)
		}
	}
}

func TestRunReaderParallelSerialFallback(t *testing.T) {
	q := MustCompile("$.v")
	st, err := q.RunReaderParallel(strings.NewReader(`{"v":1}`), 1, nil)
	if err != nil || st.Matches != 1 {
		t.Fatalf("st=%+v err=%v", st, err)
	}
}

func TestRunReaderContextCancelled(t *testing.T) {
	q := MustCompile("$.v")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := q.RunReaderContext(ctx, strings.NewReader(ndjsonInput(10)), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	_, err = q.RunReaderParallelContext(ctx, strings.NewReader(ndjsonInput(10)), 4, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel err = %v", err)
	}
}

func TestRunReaderContextCancelMidStream(t *testing.T) {
	q := MustCompile("$.v")
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	st, err := q.RunReaderContext(ctx, strings.NewReader(ndjsonInput(100)), func(m Match) {
		n++
		if n == 3 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if st.Matches != 3 || n != 3 {
		t.Fatalf("processed %d records after cancel (stats %d)", n, st.Matches)
	}
}

func TestRunReaderErrorNamesRecord(t *testing.T) {
	q := MustCompile("$.v.x")
	in := `{"v": {"x": 1}}` + "\n" + `{"v": {` + "\n"
	_, err := q.RunReader(strings.NewReader(in), nil)
	if err == nil || !strings.Contains(err.Error(), "record 1:") {
		t.Fatalf("err = %v", err)
	}
}

type failingReader struct{ data io.Reader }

func (f *failingReader) Read(p []byte) (int, error) {
	n, err := f.data.Read(p)
	if err == io.EOF {
		return n, fmt.Errorf("socket reset")
	}
	return n, err
}

func TestRunReaderPropagatesReadError(t *testing.T) {
	q := MustCompile("$.v")
	_, err := q.RunReader(&failingReader{strings.NewReader("{\"v\":1}\n")}, nil)
	if err == nil || !strings.Contains(err.Error(), "socket reset") {
		t.Fatalf("err = %v", err)
	}
	_, err = q.RunReaderParallel(&failingReader{strings.NewReader("{\"v\":1}\n")}, 4, nil)
	if err == nil {
		t.Fatal("parallel read error not propagated")
	}
}
