package jsonski_test

import (
	"bytes"
	"strings"
	"testing"

	"jsonski"
)

// explainDoc is small enough that the full fast-forward movement
// sequence is auditable by hand, yet exercises four of the five paper
// groups: G1 (typed attribute skips), G2 (irrelevant object), G3
// (post-match output skip), and G4 (object-end jumps).
var explainDoc = []byte(`{"alpha": {"x": 1, "y": [1, 2, 3]}, "beta": [10, 20, 30, 40], "gamma": {"target": "hit", "rest": {"deep": [true, false]}}, "delta": "tail"}`)

// TestExplainGolden pins the exact movement sequence of a known query
// over a known document. The trace is an API surface — the server's
// explain trailer and the CLI's -explain both render it — so changes to
// the fast-forward call sites should show up here deliberately, not by
// accident.
func TestExplainGolden(t *testing.T) {
	q := jsonski.MustCompile("$.gamma.target")
	st, err := q.RunExplain(explainDoc, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := st.Trace()
	if tr == nil {
		t.Fatal("explain run returned no trace")
	}
	want := []jsonski.TraceEvent{
		{Group: "G1", Func: "GoOverPriAttrs", Start: 1, End: 10, Bytes: 9, State: 0},
		{Group: "G2", Func: "GoOverObj", Start: 10, End: 34, Bytes: 24, State: 0},
		{Group: "G1", Func: "GoOverPriAttrs", Start: 34, End: 44, Bytes: 10, State: 0},
		{Group: "G1", Func: "GoOverAry", Start: 44, End: 60, Bytes: 16, State: 0},
		{Group: "G1", Func: "GoOverPriAttrs", Start: 60, End: 71, Bytes: 11, State: 0},
		{Group: "G3", Func: "GoOverPriAttrOut", Start: 82, End: 87, Bytes: 5, State: 1},
		{Group: "G4", Func: "GoToObjEnd", Start: 87, End: 121, Bytes: 34, State: 1},
		{Group: "G4", Func: "GoToObjEnd", Start: 121, End: 139, Bytes: 18, State: 0},
	}
	if len(tr.Events) != len(want) {
		t.Fatalf("got %d events, want %d:\n%+v", len(tr.Events), len(want), tr.Events)
	}
	for i, e := range tr.Events {
		if e != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, e, want[i])
		}
	}
	if tr.Dropped != 0 {
		t.Fatalf("dropped = %d", tr.Dropped)
	}
	// The trace's byte accounting must agree with the stats the same run
	// produced.
	var skipped int64
	for _, v := range st.SkippedBytes {
		skipped += v
	}
	if got := tr.SkippedBytes(); got != skipped {
		t.Fatalf("trace bytes %d != stats skipped bytes %d", got, skipped)
	}
}

// TestExplainMatchesRegularRun asserts that explain mode only observes:
// matches and stats are identical with and without a trace.
func TestExplainMatchesRegularRun(t *testing.T) {
	for _, path := range []string{"$.gamma.target", "$.alpha.y[1]", "$.beta[0:2]", "$..deep"} {
		q := jsonski.MustCompile(path)
		var plain, explained [][]byte
		collect := func(out *[][]byte) func(jsonski.Match) {
			return func(m jsonski.Match) {
				*out = append(*out, append([]byte(nil), m.Value...))
			}
		}
		st1, err1 := q.Run(explainDoc, collect(&plain))
		st2, err2 := q.RunExplain(explainDoc, 0, collect(&explained))
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: errs %v / %v", path, err1, err2)
		}
		if st1.Matches != st2.Matches || st1.InputBytes != st2.InputBytes ||
			st1.SkippedBytes != st2.SkippedBytes {
			t.Fatalf("%s: stats diverge: %+v vs %+v", path, st1, st2)
		}
		if len(plain) != len(explained) {
			t.Fatalf("%s: %d vs %d matches", path, len(plain), len(explained))
		}
		for i := range plain {
			if !bytes.Equal(plain[i], explained[i]) {
				t.Fatalf("%s: match %d %q vs %q", path, i, plain[i], explained[i])
			}
		}
	}
}

// TestExplainBounded asserts the hard event cap: a tiny limit yields
// exactly that many events plus an accurate dropped count, and memory
// never scales with the input.
func TestExplainBounded(t *testing.T) {
	q := jsonski.MustCompile("$.gamma.target")
	st, err := q.RunExplain(explainDoc, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := st.Trace()
	if len(tr.Events) != 3 {
		t.Fatalf("got %d events, want cap of 3", len(tr.Events))
	}
	if tr.Dropped != 5 {
		t.Fatalf("dropped = %d, want 5 (golden run has 8 events)", tr.Dropped)
	}
}

// TestExplainNFAStateSet checks descendant-path explain: events carry
// the live NFA state-set bitmask and dead subtrees still show up as G2
// skips.
func TestExplainNFAStateSet(t *testing.T) {
	doc := []byte(`{"keep": {"deep": 1}, "skip": "nothing"}`)
	q := jsonski.MustCompile("$..deep")
	st, err := q.RunExplain(doc, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Matches != 1 {
		t.Fatalf("matches = %d", st.Matches)
	}
	if st.Trace() == nil {
		t.Fatal("no trace")
	}
}

// TestExplainDump smoke-tests the CLI rendering.
func TestExplainDump(t *testing.T) {
	q := jsonski.MustCompile("$.gamma.target")
	st, err := q.RunExplain(explainDoc, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	st.Trace().Dump(&sb)
	out := sb.String()
	if !strings.Contains(out, "GoToObjEnd") || !strings.Contains(out, "G4") {
		t.Fatalf("dump missing expected content:\n%s", out)
	}
	if n := strings.Count(out, "\n"); n != 8 {
		t.Fatalf("dump has %d lines, want 8", n)
	}
}

// TestOrdinaryRunHasNoTrace pins the zero-overhead contract's API half:
// non-explain entry points never attach a trace.
func TestOrdinaryRunHasNoTrace(t *testing.T) {
	q := jsonski.MustCompile("$.gamma.target")
	st, err := q.Run(explainDoc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Trace() != nil {
		t.Fatal("plain Run attached a trace")
	}
	if st.Latency() != nil {
		t.Fatal("plain Run attached a latency snapshot")
	}
}

// TestExplainFilterProbePlans pins the explain surface of the filter
// planner: a skip-eligible predicate (relative singular child chains
// only) shows FilterProbe(skip-eligible) events and G1/G4 charges from
// its mini child-chain probes, while a predicate with an absolute
// reference falls back to FilterProbe(full-parse). Both charge the
// candidate capture to a fast-forward group, so the skip accounting
// demonstrably covers filter traversal.
func TestExplainFilterProbePlans(t *testing.T) {
	doc := []byte(`{"items": [` +
		`{"price": 5, "pad": {"a": [1, 2, 3], "b": "xxxxxxxxxxxxxxxx"}, "name": "cheap"},` +
		`{"price": 50, "pad": {"a": [4, 5, 6], "b": "yyyyyyyyyyyyyyyy"}, "name": "dear"}` +
		`], "max": 10}`)

	q := jsonski.MustCompile("$.items[?@.price < 10]")
	st, err := q.RunExplain(doc, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Matches != 1 {
		t.Fatalf("matches = %d", st.Matches)
	}
	var probes, rejects int
	for _, e := range st.Trace().Events {
		if strings.HasPrefix(e.Func, "FilterProbe(skip-eligible)") {
			probes++
			if strings.HasSuffix(e.Func, "reject") {
				rejects++
			}
			if e.Group != "G5" {
				t.Fatalf("element candidate charged to %s, want G5: %+v", e.Group, e)
			}
		}
	}
	if probes != 2 || rejects != 1 {
		t.Fatalf("probes = %d rejects = %d, want 2/1:\n%+v", probes, rejects, st.Trace().Events)
	}
	// The skip-eligible plan fast-forwards: candidate capture plus the
	// mini-DFA probe charges must cover most of the input.
	if r := st.FastForwardRatio(); r < 0.5 {
		t.Fatalf("filter run fast-forward ratio = %.2f, want >= 0.5", r)
	}

	q2 := jsonski.MustCompile("$.items[?@.price < $.max]")
	st2, err := q2.RunExplain(doc, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Matches != 1 {
		t.Fatalf("abs-ref matches = %d", st2.Matches)
	}
	full := 0
	for _, e := range st2.Trace().Events {
		if strings.HasPrefix(e.Func, "FilterProbe(full-parse)") {
			full++
		}
	}
	if full != 2 {
		t.Fatalf("full-parse probes = %d, want 2:\n%+v", full, st2.Trace().Events)
	}
}
