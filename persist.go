package jsonski

import (
	"unicode"

	"jsonski/internal/store"
)

// Span is a half-open byte range [Start, End) in a document buffer,
// used as the record table of a serialized NDJSON corpus index.
type Span = store.Span

// CatalogStats is a point-in-time snapshot of catalog effectiveness;
// see Catalog.
type CatalogStats = store.CatalogStats

// CatalogEntry describes one cataloged sidecar; see Catalog.Entries.
type CatalogEntry = store.EntryInfo

// IndexExt is the conventional filename extension for serialized index
// sidecars.
const IndexExt = store.Ext

// ContentHash returns the content key a Catalog files a document under —
// the same hash IndexCache keys on. Exposed so external stores and the
// daemon's /index API can address documents by hash.
func ContentHash(data []byte) uint64 { return store.ContentHash(data) }

// RecordSpans computes the record table of an NDJSON buffer: one
// whitespace-trimmed Span per non-blank line, with the same record
// boundaries the reader entry points use. Pass the result to SaveIndex
// or Catalog.Put so each record of the serialized corpus can later be
// queried zero-copy via Query.RunIndexedWindow.
func RecordSpans(data []byte) []Span {
	var spans []Span
	lineStart := 0
	for i := 0; i <= len(data); i++ {
		if i < len(data) && data[i] != '\n' {
			continue
		}
		lo, hi := lineStart, i
		lineStart = i + 1
		for lo < hi && isSpace(data[lo]) {
			lo++
		}
		for hi > lo && isSpace(data[hi-1]) {
			hi--
		}
		if lo < hi {
			spans = append(spans, Span{Start: int64(lo), End: int64(hi)})
		}
	}
	return spans
}

func isSpace(b byte) bool { return b < 0x80 && unicode.IsSpace(rune(b)) }

// SaveIndex serializes an index — document bytes, structural bitmaps,
// and an optional NDJSON record table — to a versioned, checksummed
// sidecar at path. The write is atomic (temp file + rename): a crash
// leaves either the previous file or none. spans, when non-nil, must be
// ordered, non-overlapping, and within the document.
func SaveIndex(path string, x *Index, spans []Span) error {
	return store.Write(path, x.ix, spans)
}

// LoadIndex maps (on linux/darwin; reads elsewhere) a sidecar written
// by SaveIndex and returns a ready-to-stream index over its embedded
// document, plus the record table for NDJSON corpora. The entire file
// is validated — checksums, geometry, content hash — before any mask is
// served; a torn or corrupted file yields an error, never wrong masks.
//
// The returned index reports Mapped() == true, its Data() aliases the
// mapping, and Release unmaps the file; it otherwise behaves like any
// BuildIndex result.
func LoadIndex(path string) (*Index, []Span, error) {
	f, err := store.Open(path)
	if err != nil {
		return nil, nil, err
	}
	ix := f.Index()
	spans := f.Spans()
	f.Close()
	return &Index{ix: ix}, spans, nil
}

// Catalog is a durable sibling of IndexCache: a directory of serialized
// index sidecars keyed by document content hash, LRU-evicted against an
// on-disk byte budget. A process restarted over the same directory
// serves its first repeated document from mapped masks with zero
// rebuilds. All methods are safe for concurrent use.
type Catalog struct {
	c *store.Catalog
}

// OpenCatalog opens (creating if needed) the sidecar directory at dir,
// warming the catalog from every valid sidecar already present and
// deleting corrupt or torn ones. maxBytes <= 0 selects a default
// on-disk budget.
func OpenCatalog(dir string, maxBytes int64) (*Catalog, error) {
	c, err := store.OpenCatalog(dir, maxBytes)
	if err != nil {
		return nil, err
	}
	return &Catalog{c: c}, nil
}

// Get returns a mapped index and record table for data on a hit, or
// (nil, nil) on a miss. The caller owns one reference on the returned
// index and must Release it; that reference keeps the mapping alive
// across any concurrent eviction or Delete.
func (c *Catalog) Get(data []byte) (*Index, []Span) {
	ix, spans := c.c.Get(data)
	if ix == nil {
		return nil, nil
	}
	return &Index{ix: ix}, spans
}

// Put builds, persists, and returns a mapped index for data (with the
// optional NDJSON record spans) — or returns the existing entry without
// rebuilding. Ownership is as in Get.
func (c *Catalog) Put(data []byte, spans []Span) (*Index, []Span, error) {
	ix, sp, err := c.c.Put(data, spans)
	if err != nil {
		return nil, nil, err
	}
	return &Index{ix: ix}, sp, nil
}

// Contains reports whether the catalog holds an entry for hash without
// touching LRU order or the hit/miss counters.
func (c *Catalog) Contains(hash uint64) bool { return c.c.Contains(hash) }

// Delete drops the entry for hash and unlinks its sidecar, reporting
// whether one existed. In-flight readers keep their mappings until
// their final Release.
func (c *Catalog) Delete(hash uint64) bool { return c.c.Delete(hash) }

// Len returns the number of cataloged sidecars.
func (c *Catalog) Len() int { return c.c.Len() }

// Dir returns the sidecar directory.
func (c *Catalog) Dir() string { return c.c.Dir() }

// Entries returns a snapshot of the catalog contents, most recently
// used first.
func (c *Catalog) Entries() []CatalogEntry { return c.c.Entries() }

// Stats returns a snapshot of the catalog counters.
func (c *Catalog) Stats() CatalogStats { return c.c.Stats() }

// Close detaches every entry without unlinking sidecars — they are the
// durable cache the next process warms from. In-flight readers keep
// their mappings until released.
func (c *Catalog) Close() { c.c.Close() }
