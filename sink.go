package jsonski

import (
	"io"

	"jsonski/internal/core"
)

// Sink consumes the spans a run selects. It replaces ad-hoc callback
// buffering as the output path of every entry point: Run* routes
// matches through a sink, and the four implementations below cover the
// common shapes — buffered collection (BufferSink), zero-copy streaming
// to a writer (StreamSink), counting (CountSink), and fan-out for
// crosschecks (Tee).
//
// Begin is called once per record before any of its spans, binding the
// record's buffer; Span receives each match as a half-open byte range
// of that buffer, whitespace-trimmed, in document order. A Span error
// stops further delivery — the engine still finishes the record (its
// statistics stay exact), and the error is returned from the entry
// point unless the engine itself failed. Flush is called once at the
// end of the run, even after an error.
//
// Sinks are driven by one run at a time; none of the implementations
// here is safe for concurrent use.
type Sink interface {
	// Begin starts record `record`, whose bytes are data. Spans that
	// follow index into data.
	Begin(record int, data []byte)
	// Span delivers one match: data[start:end] of the current record.
	Span(start, end int) error
	// Flush marks the end of the run, flushing any buffered output.
	Flush() error
}

// BufferSink collects every span as a copied value — the buffered
// output mode (All's behavior as a Sink).
type BufferSink struct {
	// Values holds one copy per match, in document order across all
	// records of the run.
	Values [][]byte

	data []byte
}

// Begin implements Sink.
func (b *BufferSink) Begin(_ int, data []byte) { b.data = data }

// Span implements Sink, copying the value out of the record buffer.
func (b *BufferSink) Span(start, end int) error {
	b.Values = append(b.Values, append([]byte(nil), b.data[start:end]...))
	return nil
}

// Flush implements Sink.
func (b *BufferSink) Flush() error { return nil }

// Reset drops collected values, retaining capacity for reuse.
func (b *BufferSink) Reset() { b.Values = b.Values[:0] }

// StreamSink writes every span straight from the input buffer to W —
// no per-match allocation or copy — framing each one with Prefix and
// Suffix. It is the zero-copy output mode behind the server's NDJSON
// responses and the jsonski CLI.
//
// W is typically buffered (a *bufio.Writer); Flush forwards to W when
// it implements `Flush() error`.
type StreamSink struct {
	// W receives Prefix, the raw span bytes, then Suffix per match.
	W io.Writer
	// Prefix and Suffix frame each span; NewStreamSink sets Suffix to
	// a newline and leaves Prefix empty.
	Prefix, Suffix []byte
	// Spans counts the spans written so far.
	Spans int64

	data []byte
}

// NewStreamSink returns a StreamSink writing newline-terminated spans
// to w.
func NewStreamSink(w io.Writer) *StreamSink {
	return &StreamSink{W: w, Suffix: []byte{'\n'}}
}

// Begin implements Sink.
func (s *StreamSink) Begin(_ int, data []byte) { s.data = data }

// Span implements Sink, writing the framed value without copying it.
func (s *StreamSink) Span(start, end int) error {
	if len(s.Prefix) > 0 {
		if _, err := s.W.Write(s.Prefix); err != nil {
			return err
		}
	}
	if _, err := s.W.Write(s.data[start:end]); err != nil {
		return err
	}
	if len(s.Suffix) > 0 {
		if _, err := s.W.Write(s.Suffix); err != nil {
			return err
		}
	}
	s.Spans++
	return nil
}

// Flush implements Sink, flushing W when it is flushable.
func (s *StreamSink) Flush() error {
	if f, ok := s.W.(interface{ Flush() error }); ok {
		return f.Flush()
	}
	return nil
}

// CountSink counts spans and discards them — the output mode of
// -count/-stats style runs. (The Run entry points with a nil callback
// or nil sink count without any sink dispatch at all; CountSink exists
// for composition, e.g. inside a Tee.)
type CountSink struct {
	// Spans is the number of spans delivered.
	Spans int64
}

// Begin implements Sink.
func (c *CountSink) Begin(int, []byte) {}

// Span implements Sink.
func (c *CountSink) Span(int, int) error { c.Spans++; return nil }

// Flush implements Sink.
func (c *CountSink) Flush() error { return nil }

// Tee fans every sink call out to all of sinks in order, used by
// crosscheck tests to drive two output modes from one evaluation. Span
// and Flush call every sink even after one errors; the first error is
// reported.
func Tee(sinks ...Sink) Sink { return teeSink(sinks) }

type teeSink []Sink

func (t teeSink) Begin(record int, data []byte) {
	for _, s := range t {
		s.Begin(record, data)
	}
}

func (t teeSink) Span(start, end int) error {
	var first error
	for _, s := range t {
		if err := s.Span(start, end); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (t teeSink) Flush() error {
	var first error
	for _, s := range t {
		if err := s.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// callbackSink adapts the func(Match) callback entry points onto the
// sink path, so every Run* flows through one output mechanism.
type callbackSink struct {
	fn     func(Match)
	data   []byte
	record int
}

func (c *callbackSink) Begin(record int, data []byte) { c.record, c.data = record, data }

func (c *callbackSink) Span(start, end int) error {
	c.fn(Match{Start: start, End: end, Value: c.data[start:end], Record: c.record})
	return nil
}

func (c *callbackSink) Flush() error { return nil }

// fnSink wraps a callback as a sink; a nil callback becomes a nil sink
// (count-only: the engine skips emit dispatch entirely).
func fnSink(fn func(Match)) Sink {
	if fn == nil {
		return nil
	}
	return &callbackSink{fn: fn}
}

// sinkRun latches a sink onto an engine run: it adapts Sink.Span to the
// engine's span callback, records the sink's first error without
// aborting the engine mid-record, and settles Flush/error precedence at
// the end.
type sinkRun struct {
	sink Sink
	err  error
	emit core.EmitFunc
}

func newSinkRun(sink Sink) *sinkRun {
	sr := &sinkRun{sink: sink}
	if sink != nil {
		sr.emit = sr.deliver
	}
	return sr
}

// bind starts the next record, returning the engine emit callback (nil
// for a nil sink, keeping the engine's no-output fast path).
func (sr *sinkRun) bind(record int, data []byte) core.EmitFunc {
	if sr.sink == nil {
		return nil
	}
	sr.sink.Begin(record, data)
	return sr.emit
}

func (sr *sinkRun) deliver(start, end int) {
	if sr.err != nil {
		return // sink already failed: drop further spans, let the run finish
	}
	if err := sr.sink.Span(start, end); err != nil {
		sr.err = err
	}
}

// finish flushes the sink and merges errors: the engine's error wins
// (it describes the input), then the sink's first write error, then
// Flush's.
func (sr *sinkRun) finish(engineErr error) error {
	err := engineErr
	if err == nil {
		err = sr.err
	}
	if sr.sink != nil {
		if ferr := sr.sink.Flush(); err == nil {
			err = ferr
		}
	}
	return err
}

// setSinkRun is sinkRun for QuerySet runs: the engine reports a query
// index per span, which the flat Sink contract drops (use the callback
// entry points when per-query attribution matters).
type setSinkRun struct {
	sink Sink
	err  error
	emit core.MultiEmitFunc
}

func newSetSinkRun(sink Sink) *setSinkRun {
	sr := &setSinkRun{sink: sink}
	if sink != nil {
		sr.emit = sr.deliver
	}
	return sr
}

func (sr *setSinkRun) bind(record int, data []byte) core.MultiEmitFunc {
	if sr.sink == nil {
		return nil
	}
	sr.sink.Begin(record, data)
	return sr.emit
}

func (sr *setSinkRun) deliver(_, start, end int) {
	if sr.err != nil {
		return
	}
	if err := sr.sink.Span(start, end); err != nil {
		sr.err = err
	}
}

func (sr *setSinkRun) finish(engineErr error) error {
	err := engineErr
	if err == nil {
		err = sr.err
	}
	if sr.sink != nil {
		if ferr := sr.sink.Flush(); err == nil {
			err = ferr
		}
	}
	return err
}
