// Package jsonski is a streaming JSONPath evaluator with bit-parallel
// fast-forwarding, reproducing "JSONSki: Streaming Semi-structured Data
// with Bit-Parallel Fast-Forwarding" (Jiang & Zhao, ASPLOS 2022).
//
// A compiled Query scans a JSON buffer in a single forward pass, emitting
// every value the path selects, without building a parse tree or index.
// Substructures that cannot affect the query — wrong-typed attributes,
// unmatched values, object remainders after a match, out-of-range array
// elements — are fast-forwarded using word-sized structural bitmaps, so
// on typical path queries well over 95% of the input is never tokenized.
//
// Supported path syntax (RFC 9535): $ (root), .name and ['name']
// (child), [n] (index, negatives count from the end), [m:n:s] (slices
// with optional stride, backward with negative stride), [*] and .*
// (wildcards), [?expr] (filters: existence tests, comparisons, &&/||/!),
// [a,b,...] (unions), and ..name / ..* (descendant — the paper's stated
// future work). Descendant paths are evaluated by a set-of-states NFA
// engine: as the paper observes (§5.1) a descendant's level is unknown,
// so type-based fast-forwarding does not apply below it; dead subtrees
// are still skipped bit-parallel. Filter steps stay on the streaming
// engines: each candidate value is captured with one fast-forward
// movement and decided by a span probe. Selectors whose RFC semantics
// need the container length or per-selector output order (unions,
// negative indexes/bounds, backward slices) run segmented — a streamable
// prefix fast-forwards as usual and only the selected spans are handed
// to a reference evaluator for the deferred tail.
//
//	q := jsonski.MustCompile("$.place.name")
//	stats, err := q.Run(data, func(m jsonski.Match) {
//	    fmt.Printf("%s\n", m.Value)
//	})
package jsonski

import (
	"fmt"
	"sync"
	"sync/atomic"

	"jsonski/internal/automaton"
	"jsonski/internal/core"
	"jsonski/internal/fastforward"
	"jsonski/internal/jsonpath"
	"jsonski/internal/stream"
	"jsonski/internal/telemetry"
)

// Match is one value selected by the query. Value aliases the input
// buffer — copy it if it must outlive the buffer.
type Match struct {
	// Start and End delimit the match in the input buffer.
	Start, End int
	// Value is input[Start:End]: the matched JSON value, whitespace
	// trimmed (strings keep their quotes).
	Value []byte
	// Record is the index of the containing record for the RunRecords
	// entry points, 0 for Run.
	Record int
}

// Stats reports how a run spent its input, mirroring the paper's
// fast-forward accounting (Table 6).
type Stats struct {
	// Matches is the number of values emitted.
	Matches int64
	// InputBytes is the total input length processed.
	InputBytes int64
	// SkippedBytes counts fast-forwarded bytes per group G1..G5.
	SkippedBytes [5]int64

	trace   *Trace
	latency *LatencySnapshot
}

// Trace returns the bounded fast-forward event log recorded by an
// explain-mode run (RunExplain), or nil for ordinary runs.
func (s Stats) Trace() *Trace { return s.trace }

// Latency returns the per-record evaluation-latency distribution
// recorded by the streaming reader entry points (RunReader and friends),
// or nil for single-buffer runs, which have exactly one latency — the
// call's own duration.
func (s Stats) Latency() *LatencySnapshot { return s.latency }

// FastForwardRatio is the fraction of input bytes that were
// fast-forwarded over rather than parsed (paper Table 6, "Overall").
func (s Stats) FastForwardRatio() float64 {
	if s.InputBytes == 0 {
		return 0
	}
	var t int64
	for _, v := range s.SkippedBytes {
		t += v
	}
	return float64(t) / float64(s.InputBytes)
}

// GroupRatio is the fraction of input bytes fast-forwarded by group g
// (0-based: 0 ↔ G1 ... 4 ↔ G5).
func (s Stats) GroupRatio(g int) float64 {
	if s.InputBytes == 0 || g < 0 || g >= len(s.SkippedBytes) {
		return 0
	}
	return float64(s.SkippedBytes[g]) / float64(s.InputBytes)
}

// ScannedBytes is the complement of the fast-forward accounting: the
// bytes the engine actually examined (input minus every group's skips).
// InputBytes == ScannedBytes + sum(SkippedBytes) — each input byte is
// either charged to a Table 1 group or was scanned. Clamped at zero.
func (s Stats) ScannedBytes() int64 {
	n := s.InputBytes
	for _, v := range s.SkippedBytes {
		n -= v
	}
	if n < 0 {
		return 0
	}
	return n
}

func (s *Stats) add(st core.Stats) {
	s.Matches += st.Matches
	s.InputBytes += st.InputBytes
	for g := 0; g < int(fastforward.NumGroups); g++ {
		s.SkippedBytes[g] += st.Skipped.SkippedBytes[g]
	}
}

// merge folds another aggregate into s. Trace and latency attachments
// are carried over when s has none of its own.
func (s *Stats) merge(o Stats) {
	s.Matches += o.Matches
	s.InputBytes += o.InputBytes
	for g := range s.SkippedBytes {
		s.SkippedBytes[g] += o.SkippedBytes[g]
	}
	if s.trace == nil {
		s.trace = o.trace
	}
	if s.latency == nil {
		s.latency = o.latency
	} else if o.latency != nil {
		s.latency.merge(*o.latency)
	}
}

// runner is the common face of the evaluation engines: the DFA engine
// with full fast-forwarding for linear paths, and the NFA engine for
// paths containing the descendant operator.
type runner interface {
	Run(data []byte, emit core.EmitFunc) (core.Stats, error)
	RunIndexed(ix *stream.Index, emit core.EmitFunc) (core.Stats, error)
	RunIndexedWindow(ix *stream.Index, lo, hi int, emit core.EmitFunc) (core.Stats, error)
	SetTrace(t *telemetry.Trace)
}

// Query is a compiled JSONPath expression. It is immutable and safe for
// concurrent use; each concurrent evaluation draws a private engine from
// an internal pool.
type Query struct {
	path *jsonpath.Path
	aut  *automaton.Automaton
	pool sync.Pool
}

// Compile parses and compiles a JSONPath expression.
func Compile(expr string) (*Query, error) {
	p, err := jsonpath.Parse(expr)
	if err != nil {
		return nil, err
	}
	q := &Query{path: p}
	switch {
	case p.SplitPoint() >= 0:
		// Deferred selectors (unions, negative indexes/bounds, backward
		// slices, descendant+filter mixes): streamable prefix through the
		// DFA/NFA engine, deferred tail through the reference evaluator.
		// q.aut stays nil, so the speculative parallel entry points fall
		// back to serial evaluation.
		if _, err := core.NewSegmentedEngine(p); err != nil {
			return nil, err
		}
		q.pool.New = func() any {
			e, _ := core.NewSegmentedEngine(p)
			return runner(e)
		}
		return q, nil
	case p.HasDescendant():
		// Validate once so pool.New cannot fail later.
		if _, err := core.NewNFAEngine(p); err != nil {
			return nil, err
		}
		q.pool.New = func() any {
			e, _ := core.NewNFAEngine(p)
			return runner(e)
		}
		return q, nil
	}
	q.aut = automaton.New(p)
	q.pool.New = func() any { return runner(core.NewEngine(q.aut)) }
	return q, nil
}

// MustCompile is Compile for statically known-good expressions; it panics
// on error.
func MustCompile(expr string) *Query {
	q, err := Compile(expr)
	if err != nil {
		panic(err)
	}
	return q
}

// String returns the source expression.
func (q *Query) String() string { return q.path.String() }

// Run streams a single JSON record (or buffer holding one record),
// invoking fn for every match in document order. fn may be nil to only
// count matches.
func (q *Query) Run(data []byte, fn func(Match)) (Stats, error) {
	return q.RunSink(data, fnSink(fn))
}

// RunSink streams a single JSON record into sink: Begin binds the
// record, each match arrives as a Span, and Flush closes the run. sink
// may be nil to only count matches. A sink error stops delivery but not
// evaluation; it is returned unless the engine itself failed.
func (q *Query) RunSink(data []byte, sink Sink) (Stats, error) {
	e := q.pool.Get().(runner)
	defer q.pool.Put(e)
	sr := newSinkRun(sink)
	st, err := e.Run(data, sr.bind(0, data))
	var out Stats
	out.add(st)
	return out, sr.finish(err)
}

// RunIndexed is Run over a prebuilt structural index of the buffer: the
// engine borrows ix's materialized word masks instead of classifying
// words on the fly, which pays off whenever the same document is
// streamed more than once. The index must stay alive (not finally
// Released) for the duration of the call.
func (q *Query) RunIndexed(ix *Index, fn func(Match)) (Stats, error) {
	return q.RunIndexedSink(ix, fnSink(fn))
}

// RunIndexedSink is RunSink over a prebuilt structural index of the
// buffer. The index must stay alive (not finally Released) for the
// duration of the call.
func (q *Query) RunIndexedSink(ix *Index, sink Sink) (Stats, error) {
	e := q.pool.Get().(runner)
	defer q.pool.Put(e)
	sr := newSinkRun(sink)
	st, err := e.RunIndexed(ix.ix, sr.bind(0, ix.Data()))
	var out Stats
	out.add(st)
	return out, sr.finish(err)
}

// RunIndexedWindow evaluates the query over the [lo, hi) byte window of
// an indexed buffer, treating the window as one complete JSON record.
// The window borrows the whole-buffer masks — no per-record index build
// or copy — which is how individual records of a serialized NDJSON
// corpus (see LoadIndex, Catalog) are queried zero-copy: pass each
// record's Span as the window. Match offsets are absolute positions in
// the underlying buffer. The index must stay alive for the duration of
// the call.
func (q *Query) RunIndexedWindow(ix *Index, lo, hi int, fn func(Match)) (Stats, error) {
	return q.RunIndexedWindowSink(ix, lo, hi, fnSink(fn))
}

// RunIndexedWindowSink is RunIndexedWindow delivering into a Sink.
func (q *Query) RunIndexedWindowSink(ix *Index, lo, hi int, sink Sink) (Stats, error) {
	e := q.pool.Get().(runner)
	defer q.pool.Put(e)
	sr := newSinkRun(sink)
	st, err := e.RunIndexedWindow(ix.ix, lo, hi, sr.bind(0, ix.Data()))
	var out Stats
	out.add(st)
	return out, sr.finish(err)
}

// Count returns the number of matches in data.
func (q *Query) Count(data []byte) (int64, error) {
	st, err := q.Run(data, nil)
	return st.Matches, err
}

// RunRecords streams a sequence of independent JSON records sequentially
// with a single engine, invoking fn for each match. Match.Record carries
// the record index.
func (q *Query) RunRecords(records [][]byte, fn func(Match)) (Stats, error) {
	return q.RunRecordsSink(records, fnSink(fn))
}

// RunRecordsSink streams a sequence of independent JSON records
// sequentially with a single engine into sink; Begin is called once per
// record with the record index. A sink error aborts the remaining
// records (the output destination is broken); an engine error is wrapped
// with the index of the offending record.
func (q *Query) RunRecordsSink(records [][]byte, sink Sink) (Stats, error) {
	e := q.pool.Get().(runner)
	defer q.pool.Put(e)
	sr := newSinkRun(sink)
	var out Stats
	for i, rec := range records {
		st, err := e.Run(rec, sr.bind(i, rec))
		out.add(st)
		if err != nil {
			return out, sr.finish(wrapRecordErr(i, err))
		}
		if sr.err != nil {
			return out, sr.finish(nil)
		}
	}
	return out, sr.finish(nil)
}

// RunRecordsParallel processes independent records with `workers`
// goroutines (the paper's small-record task parallelism, Figure 12).
// fn, when non-nil, is called concurrently from multiple goroutines and
// must be safe for that. Records are claimed dynamically, so skewed
// record sizes still balance. The first error, if any, is returned after
// all workers drain.
func (q *Query) RunRecordsParallel(records [][]byte, workers int, fn func(Match)) (Stats, error) {
	if workers <= 1 || len(records) <= 1 {
		return q.RunRecords(records, fn)
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		accum   core.StatsAccum
		errOnce sync.Once
		outErr  error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := q.pool.Get().(runner)
			defer q.pool.Put(e)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(records) {
					break
				}
				rec := records[i]
				var emit core.EmitFunc
				if fn != nil {
					emit = func(s, en int) {
						fn(Match{Start: s, End: en, Value: rec[s:en], Record: i})
					}
				}
				st, err := e.Run(rec, emit)
				accum.Add(st)
				if err != nil {
					errOnce.Do(func() { outErr = wrapRecordErr(i, err) })
				}
			}
		}()
	}
	wg.Wait()
	var out Stats
	out.add(accum.Load())
	return out, outErr
}

// wrapRecordErr tags an engine error with the index of the record that
// produced it, so callers of the multi-record entry points can report
// which line of an NDJSON input is malformed.
func wrapRecordErr(record int, err error) error {
	return fmt.Errorf("record %d: %w", record, err)
}

// All collects every match into a slice of copied values. Convenient for
// small result sets; for large ones prefer RunSink with a StreamSink or
// Run with a streaming fn.
func (q *Query) All(data []byte) ([][]byte, error) {
	var sink BufferSink
	_, err := q.RunSink(data, &sink)
	return sink.Values, err
}

// RunParallel evaluates the query over one large record using `workers`
// goroutines with speculative parallelism — the paper's stated future
// work (§5.2, Table 3). The record's dominant top-level array is located
// serially, its element boundaries are discovered by speculative
// chunked bit-parallel scans (each chunk guesses its string state and is
// patched at stitch time), and workers evaluate disjoint element ranges.
//
// fn may be called concurrently, and match order is unspecified.
// Queries whose shape cannot be split this way (descendant paths, pure
// child paths, wildcard-child prefixes) fall back to the serial engine.
func (q *Query) RunParallel(data []byte, workers int, fn func(Match)) (Stats, error) {
	if q.aut == nil || workers <= 1 {
		// descendant paths have no automaton; serial evaluation
		return q.Run(data, fn)
	}
	pe, err := core.NewParallelEngine(q.path, workers)
	if err != nil {
		return q.Run(data, fn)
	}
	var emit core.EmitFunc
	if fn != nil {
		emit = func(s, en int) {
			fn(Match{Start: s, End: en, Value: data[s:en]})
		}
	}
	st, err := pe.Run(data, emit)
	var out Stats
	out.add(st)
	return out, err
}

// RunParallelIndexed is RunParallel over a prebuilt structural index.
// With the index, element discovery needs no speculation — string state
// is already resolved for every word, so chunk boundaries stitch with a
// popcount prefix sum instead of polarity guessing and misprediction
// re-scans — and each worker's shard evaluation borrows the same masks.
// fn may be called concurrently, and match order is unspecified.
func (q *Query) RunParallelIndexed(ix *Index, workers int, fn func(Match)) (Stats, error) {
	if q.aut == nil || workers <= 1 {
		return q.RunIndexed(ix, fn)
	}
	pe, err := core.NewParallelEngine(q.path, workers)
	if err != nil {
		return q.RunIndexed(ix, fn)
	}
	data := ix.Data()
	var emit core.EmitFunc
	if fn != nil {
		emit = func(s, en int) {
			fn(Match{Start: s, End: en, Value: data[s:en]})
		}
	}
	st, err := pe.RunIndexed(ix.ix, emit)
	var out Stats
	out.add(st)
	return out, err
}
