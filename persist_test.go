package jsonski

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
)

func persistDoc() []byte {
	return []byte(`{"store":{"book":[` +
		`{"title":"A","price":8,"tags":["x","y"]},` +
		`{"title":"B","price":12,"tags":[]},` +
		`{"title":"C,]}","price":31}` +
		`]},"expensive":10}`)
}

// TestSaveLoadIndexQueryEquivalence proves a query over a loaded
// (mapped) index produces exactly the matches of a direct run and of a
// freshly built index.
func TestSaveLoadIndexQueryEquivalence(t *testing.T) {
	data := persistDoc()
	path := filepath.Join(t.TempDir(), "doc"+IndexExt)
	built := BuildIndex(data)
	defer built.Release()
	if err := SaveIndex(path, built, nil); err != nil {
		t.Fatalf("SaveIndex: %v", err)
	}
	loaded, spans, err := LoadIndex(path)
	if err != nil {
		t.Fatalf("LoadIndex: %v", err)
	}
	defer loaded.Release()
	if len(spans) != 0 {
		t.Fatalf("unexpected spans: %v", spans)
	}
	if !loaded.Mapped() {
		t.Fatal("loaded index should be Mapped")
	}
	if built.Mapped() {
		t.Fatal("built index should not be Mapped")
	}

	for _, expr := range []string{
		"$.store.book[*].title", "$.store.book[1:3].price", "$..price", "$.expensive",
	} {
		q := MustCompile(expr)
		collect := func(run func(fn func(Match)) (Stats, error)) []string {
			var got []string
			if _, err := run(func(m Match) { got = append(got, string(m.Value)) }); err != nil {
				t.Fatalf("%s: %v", expr, err)
			}
			return got
		}
		direct := collect(func(fn func(Match)) (Stats, error) { return q.Run(data, fn) })
		mem := collect(func(fn func(Match)) (Stats, error) { return q.RunIndexed(built, fn) })
		mapped := collect(func(fn func(Match)) (Stats, error) { return q.RunIndexed(loaded, fn) })
		if len(direct) == 0 {
			t.Fatalf("%s: no matches", expr)
		}
		if fmt.Sprint(mem) != fmt.Sprint(direct) || fmt.Sprint(mapped) != fmt.Sprint(direct) {
			t.Fatalf("%s: direct=%v mem=%v mapped=%v", expr, direct, mem, mapped)
		}
	}
}

// TestRecordSpansAndWindow checks RecordSpans against the reader's
// record semantics and queries individual records through
// RunIndexedWindow on a loaded corpus index.
func TestRecordSpansAndWindow(t *testing.T) {
	corpus := []byte("{\"v\":1}\n\n  {\"v\":2}  \r\n{\"v\":3}")
	spans := RecordSpans(corpus)
	if len(spans) != 3 {
		t.Fatalf("spans: %v", spans)
	}
	for i, want := range []string{`{"v":1}`, `{"v":2}`, `{"v":3}`} {
		if got := string(corpus[spans[i].Start:spans[i].End]); got != want {
			t.Fatalf("span %d: %q", i, got)
		}
	}

	path := filepath.Join(t.TempDir(), "corpus"+IndexExt)
	ix := BuildIndex(corpus)
	err := SaveIndex(path, ix, spans)
	ix.Release()
	if err != nil {
		t.Fatal(err)
	}
	loaded, lspans, err := LoadIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Release()
	if len(lspans) != 3 {
		t.Fatalf("loaded spans: %v", lspans)
	}

	q := MustCompile("$.v")
	for i, sp := range lspans {
		var vals []string
		st, err := q.RunIndexedWindow(loaded, int(sp.Start), int(sp.End), func(m Match) {
			vals = append(vals, string(m.Value))
		})
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		want := fmt.Sprintf("%d", i+1)
		if len(vals) != 1 || vals[0] != want {
			t.Fatalf("record %d: got %v, want [%s]", i, vals, want)
		}
		if st.Matches != 1 {
			t.Fatalf("record %d stats: %+v", i, st)
		}
	}
}

// TestPublicCatalog smoke-tests the public wrapper: put, hit, restart
// warming, delete.
func TestPublicCatalog(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCatalog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := persistDoc()
	if ix, _ := c.Get(data); ix != nil {
		t.Fatal("hit on empty catalog")
	}
	ix, _, err := c.Put(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	ix.Release()
	ix, _ = c.Get(data)
	if ix == nil || !ix.Mapped() {
		t.Fatal("expected mapped hit")
	}
	q := MustCompile("$.expensive")
	var got []byte
	if _, err := q.RunIndexed(ix, func(m Match) { got = append([]byte(nil), m.Value...) }); err != nil {
		t.Fatal(err)
	}
	ix.Release()
	if !bytes.Equal(got, []byte("10")) {
		t.Fatalf("catalog-served query: %q", got)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Builds != 1 {
		t.Fatalf("stats: %+v", st)
	}
	c.Close()

	c2, err := OpenCatalog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if st := c2.Stats(); st.Opens != 1 || st.Entries != 1 {
		t.Fatalf("warm stats: %+v", st)
	}
	if !c2.Contains(ContentHash(data)) {
		t.Fatal("warm catalog lost the entry")
	}
	if !c2.Delete(ContentHash(data)) {
		t.Fatal("delete failed")
	}
	if c2.Len() != 0 {
		t.Fatal("entry survives delete")
	}
}
