package jsonski

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestCompileErrors(t *testing.T) {
	if _, err := Compile("$.."); err == nil {
		t.Fatal("bare '..' should be rejected")
	}
	if _, err := Compile("nope"); err == nil {
		t.Fatal("missing $ should be rejected")
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustCompile("bad")
}

func TestRunBasic(t *testing.T) {
	q := MustCompile("$.place.name")
	data := []byte(`{"coordinates":[1,2],"user":{"id":6},"place":{"name":"Manhattan","bounding_box":{"pos":[[1,2]]}}}`)
	var got []string
	st, err := q.Run(data, func(m Match) { got = append(got, string(m.Value)) })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{`"Manhattan"`}) {
		t.Fatalf("got %q", got)
	}
	if st.Matches != 1 || st.InputBytes != int64(len(data)) {
		t.Fatalf("st = %+v", st)
	}
	if st.FastForwardRatio() <= 0 {
		t.Fatal("expected nonzero fast-forward ratio")
	}
}

func TestMatchFields(t *testing.T) {
	q := MustCompile("$.a")
	data := []byte(`{"a": 42}`)
	q.Run(data, func(m Match) {
		if string(data[m.Start:m.End]) != string(m.Value) || string(m.Value) != "42" {
			t.Fatalf("m = %+v", m)
		}
		if m.Record != 0 {
			t.Fatalf("Record = %d", m.Record)
		}
	})
}

func TestCountAndAll(t *testing.T) {
	q := MustCompile("$[*].v")
	data := []byte(`[{"v":1},{"v":2},{"x":3},{"v":4}]`)
	n, err := q.Count(data)
	if err != nil || n != 3 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	vals, err := q.All(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 || string(vals[0]) != "1" || string(vals[2]) != "4" {
		t.Fatalf("vals = %q", vals)
	}
}

func TestRunRecords(t *testing.T) {
	q := MustCompile("$.v")
	records := [][]byte{
		[]byte(`{"v": "a"}`),
		[]byte(`{"x": 0}`),
		[]byte(`{"v": "c"}`),
	}
	var got []string
	st, err := q.RunRecords(records, func(m Match) {
		got = append(got, fmt.Sprintf("%d:%s", m.Record, m.Value))
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{`0:"a"`, `2:"c"`}) {
		t.Fatalf("got %q", got)
	}
	if st.Matches != 2 {
		t.Fatalf("st = %+v", st)
	}
}

func TestRunRecordsParallel(t *testing.T) {
	q := MustCompile("$.v")
	const n = 500
	records := make([][]byte, n)
	for i := range records {
		records[i] = []byte(fmt.Sprintf(`{"pad": [%d,%d], "v": %d}`, i, i, i))
	}
	var mu sync.Mutex
	var got []int
	st, err := q.RunRecordsParallel(records, 8, func(m Match) {
		mu.Lock()
		got = append(got, m.Record)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Matches != n {
		t.Fatalf("Matches = %d", st.Matches)
	}
	sort.Ints(got)
	for i, r := range got {
		if r != i {
			t.Fatalf("record %d missing (got[%d]=%d)", i, i, r)
		}
	}
}

func TestRunRecordsParallelFallsBackSerial(t *testing.T) {
	q := MustCompile("$.v")
	records := [][]byte{[]byte(`{"v":1}`)}
	st, err := q.RunRecordsParallel(records, 16, nil)
	if err != nil || st.Matches != 1 {
		t.Fatalf("st=%+v err=%v", st, err)
	}
}

func TestRunRecordsError(t *testing.T) {
	q := MustCompile("$.a.b")
	records := [][]byte{
		[]byte(`{"a": {"b": 1}}`),
		[]byte(`{"a": {`), // truncated
	}
	if _, err := q.RunRecords(records, nil); err == nil {
		t.Fatal("expected error")
	}
	if _, err := q.RunRecordsParallel(append(records, records[0]), 4, nil); err == nil {
		t.Fatal("expected error from parallel run")
	}
}

func TestConcurrentQueriesShareCompiled(t *testing.T) {
	q := MustCompile("$.x[*]")
	data := []byte(`{"x": [1,2,3]}`)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				n, err := q.Count(data)
				if err != nil || n != 3 {
					t.Errorf("n=%d err=%v", n, err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestQueryString(t *testing.T) {
	if MustCompile("$.a[1:2]").String() != "$.a[1:2]" {
		t.Fatal("String() broken")
	}
}

func TestStatsRatios(t *testing.T) {
	var s Stats
	if s.FastForwardRatio() != 0 || s.GroupRatio(0) != 0 {
		t.Fatal("zero stats should have zero ratios")
	}
	s.InputBytes = 100
	s.SkippedBytes[3] = 50
	if s.GroupRatio(3) != 0.5 || s.FastForwardRatio() != 0.5 {
		t.Fatal("ratio math broken")
	}
	if s.GroupRatio(-1) != 0 || s.GroupRatio(5) != 0 {
		t.Fatal("out-of-range group should be 0")
	}
}

func ExampleQuery_Run() {
	q := MustCompile("$.user.name")
	data := []byte(`{"id": 1, "user": {"name": "ada", "karma": 9000}}`)
	q.Run(data, func(m Match) {
		fmt.Println(string(m.Value))
	})
	// Output: "ada"
}

func TestDescendantQueries(t *testing.T) {
	q := MustCompile("$..name")
	data := []byte(`{"a": {"name": "x"}, "name": "y", "list": [{"name": "z"}]}`)
	var got []string
	st, err := q.Run(data, func(m Match) { got = append(got, string(m.Value)) })
	if err != nil {
		t.Fatal(err)
	}
	if st.Matches != 3 || len(got) != 3 {
		t.Fatalf("matches=%d got=%q", st.Matches, got)
	}
	// descendant queries work through every entry point
	n, err := q.Count(data)
	if err != nil || n != 3 {
		t.Fatalf("Count=%d err=%v", n, err)
	}
	recs := [][]byte{data, data}
	stp, err := q.RunRecordsParallel(recs, 2, nil)
	if err != nil || stp.Matches != 6 {
		t.Fatalf("parallel st=%+v err=%v", stp, err)
	}
}

func TestDescendantAllowedInSets(t *testing.T) {
	// Descendant queries route to a sidecar NFA engine within the set.
	qs, err := CompileSet("$.ok", "$..nope")
	if err != nil {
		t.Fatalf("descendant in set should compile: %v", err)
	}
	counts, err := qs.Counts([]byte(`{"ok": 1, "deep": {"nope": 2}}`))
	if err != nil || counts[0] != 1 || counts[1] != 1 {
		t.Fatalf("counts=%v err=%v", counts, err)
	}
}

func TestCompileRejectsOverlongDescendantPath(t *testing.T) {
	expr := "$..a" + strings.Repeat(".b", 70)
	if _, err := Compile(expr); err == nil {
		t.Fatal("expected length error")
	}
}

func TestRunParallelMatchesSerial(t *testing.T) {
	var sb strings.Builder
	sb.WriteByte('[')
	for i := 0; i < 300; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"id": %d, "x": "pad,]} %d"}`, i, i)
	}
	sb.WriteByte(']')
	data := []byte(sb.String())
	q := MustCompile("$[*].id")
	serial, err := q.Count(data)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []string
	st, err := q.RunParallel(data, 8, func(m Match) {
		mu.Lock()
		got = append(got, string(m.Value))
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Matches != serial || int64(len(got)) != serial {
		t.Fatalf("parallel %d serial %d", st.Matches, serial)
	}
	// fallback paths
	q2 := MustCompile("$.a.b")
	n, err := q2.RunParallel([]byte(`{"a":{"b":1}}`), 8, nil)
	if err != nil || n.Matches != 1 {
		t.Fatalf("fallback st=%+v err=%v", n, err)
	}
	q3 := MustCompile("$..id")
	n, err = q3.RunParallel(data, 8, nil)
	if err != nil || n.Matches != serial {
		t.Fatalf("descendant fallback st=%+v err=%v", n, err)
	}
}
